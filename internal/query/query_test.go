package query

import (
	"bytes"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/ph"
)

// The test scheme matches a tuple when any word equals the token. A full
// scan and a narrowed pass both count their tested tuples, so tests can
// assert the planner's O(n + Σ|survivors|) shape, not just its answers.
var (
	fullScans   atomic.Int64
	testedCount atomic.Int64
)

func testEval(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	fullScans.Add(1)
	testedCount.Add(int64(len(et.Tuples)))
	var pos []int
	for i := range et.Tuples {
		if tupleMatches(et.Tuples[i], q.Token) {
			pos = append(pos, i)
		}
	}
	return ph.SelectPositions(et, pos), nil
}

func testNarrow(et *ph.EncryptedTable, q *ph.EncryptedQuery, candidates []int) ([]int, error) {
	if candidates == nil { // Narrower contract: nil = whole table
		testedCount.Add(int64(len(et.Tuples)))
		var pos []int
		for i := range et.Tuples {
			if tupleMatches(et.Tuples[i], q.Token) {
				pos = append(pos, i)
			}
		}
		return pos, nil
	}
	testedCount.Add(int64(len(candidates)))
	var pos []int
	for _, p := range candidates {
		if tupleMatches(et.Tuples[p], q.Token) {
			pos = append(pos, p)
		}
	}
	return pos, nil
}

func tupleMatches(tp ph.EncryptedTuple, token []byte) bool {
	for _, w := range tp.Words {
		if bytes.Equal(w, token) {
			return true
		}
	}
	return false
}

func init() {
	ph.RegisterEvaluator("plan-test", testEval)
	ph.RegisterNarrower("plan-test", testNarrow)
}

// testTable builds a table whose tuple i carries one word per column
// value; cols[c][i] is column c's value for tuple i.
func testTable(cols ...[]string) *ph.EncryptedTable {
	et := &ph.EncryptedTable{SchemeID: "plan-test"}
	n := len(cols[0])
	for i := 0; i < n; i++ {
		var words [][]byte
		for _, col := range cols {
			words = append(words, []byte(col[i]))
		}
		et.Tuples = append(et.Tuples, ph.EncryptedTuple{ID: []byte{byte(i)}, Words: words})
	}
	return et
}

func q(token string) *ph.EncryptedQuery {
	return &ph.EncryptedQuery{SchemeID: "plan-test", Token: []byte(token)}
}

// evens/odds style fixture: column 0 splits the table in half, column 1
// hits exactly one tuple.
func fixture(n int) *ph.EncryptedTable {
	broad := make([]string, n)
	narrow := make([]string, n)
	for i := range broad {
		if i%2 == 0 {
			broad[i] = "even"
		} else {
			broad[i] = "odd"
		}
		narrow[i] = "x"
	}
	narrow[n-2] = "rare"
	return testTable(broad, narrow)
}

func naiveConj(et *ph.EncryptedTable, qs []*ph.EncryptedQuery) []int {
	var out []int
	for i := range et.Tuples {
		all := true
		for _, qq := range qs {
			if !tupleMatches(et.Tuples[i], qq.Token) {
				all = false
				break
			}
		}
		if all {
			out = append(out, i)
		}
	}
	if out == nil {
		out = []int{}
	}
	return out
}

func runPlan(t *testing.T, et *ph.EncryptedTable, conjs []*Conjunct) ([]int, *Plan) {
	t.Helper()
	plan, err := Build("t", len(et.Tuples), conjs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(et)
	if err != nil {
		t.Fatal(err)
	}
	return got, plan
}

func TestBuildOrdersBySelectivity(t *testing.T) {
	conjs := []*Conjunct{
		{Index: 0, Q: q("a"), Est: 0.5},
		{Index: 1, Q: q("b"), Est: 0.01},
		{Index: 2, Q: q("c"), Est: 0.25},
	}
	plan, err := Build("t", 100, conjs)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, cj := range plan.Conjuncts {
		order = append(order, cj.Index)
	}
	if want := []int{1, 2, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestBuildPutsCachedFirst(t *testing.T) {
	conjs := []*Conjunct{
		{Index: 0, Q: q("a"), Est: 0.001},
		{Index: 1, Q: q("b"), Est: 0.9, Cached: CachedFull, Positions: []int{1, 2, 3}},
		{Index: 2, Q: q("c"), Est: 0.9, Cached: CachedFull, Positions: []int{1}},
	}
	plan, err := Build("t", 100, conjs)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, cj := range plan.Conjuncts {
		order = append(order, cj.Index)
	}
	// Cached sets lead (smallest first) even against a very selective
	// uncached conjunct: they cost nothing to intersect.
	if want := []int{2, 1, 0}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestBuildPrefersCheapPrefixDriver: a cached prefix whose completion
// costs only a small tail scan beats a marginally more selective
// uncached conjunct that would have to scan the whole table.
func TestBuildPrefersCheapPrefixDriver(t *testing.T) {
	conjs := []*Conjunct{
		{Index: 0, Q: q("a"), Est: 0.009},                                     // uncached: driver cost 1000 + 9
		{Index: 1, Q: q("b"), Est: 0.010, Cached: CachedPrefix, Scanned: 990}, // tail cost 10 + 10
	}
	plan, err := Build("t", 1000, conjs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Conjuncts[0].Index != 1 {
		t.Fatalf("driver is conjunct %d, want the cheap cached prefix 1", plan.Conjuncts[0].Index)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build("t", 0, nil); err == nil {
		t.Fatal("empty conjunction must be rejected")
	}
}

func TestRunMatchesNaiveIntersection(t *testing.T) {
	et := fixture(64)
	cases := [][]*ph.EncryptedQuery{
		{q("even"), q("rare")},
		{q("odd"), q("rare")}, // empty intersection (rare sits on an even tuple)
		{q("even"), q("odd")}, // disjoint broad conjuncts
		{q("even"), q("even")},
		{q("even"), q("x"), q("rare")},
	}
	for ci, qs := range cases {
		conjs := make([]*Conjunct, len(qs))
		for i, qq := range qs {
			conjs[i] = &Conjunct{Index: i, Q: qq, Est: 0.5}
		}
		got, _ := runPlan(t, et, conjs)
		if want := naiveConj(et, qs); !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: Run = %v, want %v", ci, got, want)
		}
	}
}

// TestRunScansOnceAndNarrows asserts the cost shape the planner exists
// for: one full-width driver pass (the most selective estimate) and
// only narrowed passes for the rest — never the scheme's cloning
// full-table evaluator.
func TestRunScansOnceAndNarrows(t *testing.T) {
	et := fixture(1000)
	conjs := []*Conjunct{
		{Index: 0, Q: q("even"), Est: 0.5},
		{Index: 1, Q: q("rare"), Est: 0.001},
	}
	fullScans.Store(0)
	testedCount.Store(0)
	got, plan := runPlan(t, et, conjs)
	if want := naiveConj(et, []*ph.EncryptedQuery{q("even"), q("rare")}); !reflect.DeepEqual(got, want) {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	// The driver runs through the narrower over the full position range
	// (positions only, no tuple cloning), so the evaluator proper is
	// never called.
	if n := fullScans.Load(); n != 0 {
		t.Fatalf("plan invoked the cloning evaluator %d times, want 0", n)
	}
	// Driver pass tests n positions; the broad conjunct is then tested
	// only at the single survivor: n + 1 total.
	if n := testedCount.Load(); n != int64(len(et.Tuples)+1) {
		t.Fatalf("plan tested %d positions, want %d", n, len(et.Tuples)+1)
	}
	if plan.Conjuncts[0].Source != SourceScan || plan.Conjuncts[1].Source != SourceNarrow {
		t.Fatalf("sources = %v, %v; want full-scan then narrow", plan.Conjuncts[0].Source, plan.Conjuncts[1].Source)
	}
	if plan.Conjuncts[0].FullPositions == nil {
		t.Fatal("driver must surface its full position set for cache write-back")
	}
	if plan.Conjuncts[1].FullPositions != nil {
		t.Fatal("narrowed conjunct must not claim a full position set")
	}
}

// TestRunUsesCachedPositions: with every conjunct cached, the plan runs
// zero cryptography.
func TestRunUsesCachedPositions(t *testing.T) {
	et := fixture(100)
	evens := naiveConj(et, []*ph.EncryptedQuery{q("even")})
	rare := naiveConj(et, []*ph.EncryptedQuery{q("rare")})
	conjs := []*Conjunct{
		{Index: 0, Q: q("even"), Cached: CachedFull, Positions: evens, Scanned: 100, Est: 0.5, EstKnown: true},
		{Index: 1, Q: q("rare"), Cached: CachedFull, Positions: rare, Scanned: 100, Est: 0.01, EstKnown: true},
	}
	fullScans.Store(0)
	testedCount.Store(0)
	got, plan := runPlan(t, et, conjs)
	if want := naiveConj(et, []*ph.EncryptedQuery{q("even"), q("rare")}); !reflect.DeepEqual(got, want) {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	if fullScans.Load() != 0 || testedCount.Load() != 0 {
		t.Fatalf("fully cached plan ran %d scans / %d tests, want none",
			fullScans.Load(), testedCount.Load())
	}
	for _, cj := range plan.Conjuncts {
		if cj.Source != SourceHit {
			t.Fatalf("source = %v, want cache-hit", cj.Source)
		}
	}
}

// TestRunCachedPrefixDriver: a prefix entry as driver scans only the
// appended tail and surfaces the completed full set.
func TestRunCachedPrefixDriver(t *testing.T) {
	et := fixture(100)
	rareAll := naiveConj(et, []*ph.EncryptedQuery{q("rare")})
	var rarePrefix []int
	for _, p := range rareAll {
		if p < 90 {
			rarePrefix = append(rarePrefix, p)
		}
	}
	conjs := []*Conjunct{
		{Index: 0, Q: q("rare"), Cached: CachedPrefix, Positions: rarePrefix, Scanned: 90, Est: 0.01, EstKnown: true},
		{Index: 1, Q: q("even"), Est: 0.5},
	}
	fullScans.Store(0)
	testedCount.Store(0)
	got, plan := runPlan(t, et, conjs)
	if want := naiveConj(et, []*ph.EncryptedQuery{q("rare"), q("even")}); !reflect.DeepEqual(got, want) {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	if fullScans.Load() != 0 {
		t.Fatal("prefix driver must not full-scan")
	}
	driver := plan.Conjuncts[0]
	if driver.Source != SourceDelta || driver.Tested != 10 {
		t.Fatalf("driver: source %v tested %d, want cache-delta testing 10", driver.Source, driver.Tested)
	}
	if !reflect.DeepEqual(driver.FullPositions, rareAll) {
		t.Fatalf("driver completed set = %v, want %v", driver.FullPositions, rareAll)
	}
}

// TestRunDeltaNarrowReportsTailHits: a non-driver conjunct with a
// cached prefix tests only tail survivors, and NarrowHits reports the
// hits among exactly those — the conditional-selectivity numerator the
// storage layer feeds back to the sketch.
func TestRunDeltaNarrowReportsTailHits(t *testing.T) {
	et := fixture(100) // "rare" sits at position 98, an even tuple
	evensAll := naiveConj(et, []*ph.EncryptedQuery{q("even")})
	var evensPrefix []int
	for _, p := range evensAll {
		if p < 90 {
			evensPrefix = append(evensPrefix, p)
		}
	}
	// Est 0.95 keeps the prefix conjunct's cost (10 tail + 95 survivors)
	// above the rare driver's (100 + 0.1), so it narrows second.
	conjs := []*Conjunct{
		{Index: 0, Q: q("rare"), Est: 0.001},
		{Index: 1, Q: q("even"), Est: 0.95, Cached: CachedPrefix, Positions: evensPrefix, Scanned: 90},
	}
	got, plan := runPlan(t, et, conjs)
	if want := []int{98}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Run = %v, want %v", got, want)
	}
	cj := plan.Conjuncts[1]
	if cj.Source != SourceDelta {
		t.Fatalf("prefix non-driver source = %v, want cache-delta", cj.Source)
	}
	// The sole survivor (98) lies in the tail, so exactly one position
	// was tested and it hit.
	if cj.Tested != 1 || cj.NarrowHits != 1 || cj.Hits != 1 {
		t.Fatalf("tested %d, narrow hits %d, hits %d; want 1, 1, 1", cj.Tested, cj.NarrowHits, cj.Hits)
	}
}

// TestRunSkipsAfterEmpty: once the survivor set is empty the remaining
// conjuncts are never evaluated.
func TestRunSkipsAfterEmpty(t *testing.T) {
	et := fixture(50)
	conjs := []*Conjunct{
		{Index: 0, Q: q("nothing-matches"), Est: 0.001},
		{Index: 1, Q: q("even"), Est: 0.5},
	}
	fullScans.Store(0)
	testedCount.Store(0)
	got, plan := runPlan(t, et, conjs)
	if len(got) != 0 {
		t.Fatalf("Run = %v, want empty", got)
	}
	if plan.Conjuncts[1].Source != SourceSkipped {
		t.Fatalf("second conjunct source = %v, want skipped", plan.Conjuncts[1].Source)
	}
	if n := testedCount.Load(); n != int64(len(et.Tuples)) {
		t.Fatalf("tested %d positions, want %d (driver only)", n, len(et.Tuples))
	}
}

func TestRunRejectsStaleSnapshot(t *testing.T) {
	et := fixture(10)
	plan, err := Build("t", 12, []*Conjunct{{Index: 0, Q: q("even")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Run(et); err == nil {
		t.Fatal("plan for a different tuple count must refuse to run")
	}
}

func TestAnnotatePredictsSources(t *testing.T) {
	conjs := []*Conjunct{
		{Index: 0, Q: q("a"), Est: 0.9, Cached: CachedFull},
		{Index: 1, Q: q("b"), Est: 0.1},
		{Index: 2, Q: q("c"), Est: 0.5, Cached: CachedPrefix},
	}
	plan, err := Build("t", 100, conjs)
	if err != nil {
		t.Fatal(err)
	}
	plan.Annotate()
	want := map[int]Source{0: SourceHit, 1: SourceNarrow, 2: SourceDelta}
	for _, cj := range plan.Conjuncts {
		if cj.Source != want[cj.Index] {
			t.Fatalf("conjunct %d annotated %v, want %v", cj.Index, cj.Source, want[cj.Index])
		}
	}
	// The cached conjunct leads, so the uncached selective one narrows.
	if plan.Conjuncts[0].Index != 0 {
		t.Fatalf("cached conjunct must lead, got index %d", plan.Conjuncts[0].Index)
	}
}
