// Package ctcompare flags variable-time comparison of secret-derived
// bytes in the repo's cryptographic packages. bytes.Equal exits on the
// first mismatching byte, so comparing a PRF checksum, HMAC tag, or
// trapdoor-derived value with it leaks — through timing — how many
// leading bytes an attacker's forgery matched: a byte-at-a-time oracle
// against the secret. The SWP matcher's checksum comparison
// (internal/swp/matcher.go) shipped with exactly this bug.
//
// In the packages that handle PRF/HMAC/trapdoor material (crypto, swp,
// schemes, authindex), the analyzer flags:
//
//   - bytes.Equal(...)
//   - reflect.DeepEqual on []byte operands
//   - string(a) == string(b) where a and b are byte slices
//
// The fix is hmac.Equal (crypto/hmac) or subtle.ConstantTimeCompare —
// both examine every byte regardless of where the first mismatch falls.
// Comparisons of genuinely public values (Merkle roots published as
// commitments) take a //phlint:ignore with the reason spelled out.
package ctcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctcompare analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctcompare",
	Doc: "secret-derived bytes must be compared in constant time " +
		"(hmac.Equal or subtle.ConstantTimeCompare, not bytes.Equal)",
	Match: func(path string) bool {
		return analysis.PathHasAnySegment(path, "crypto", "swp", "schemes", "authindex")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BinaryExpr:
				checkStringCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	switch obj.FullName() {
	case "bytes.Equal":
		pass.Reportf(call.Pos(),
			"bytes.Equal exits on the first mismatch and leaks a timing oracle on secret-derived bytes; use hmac.Equal or subtle.ConstantTimeCompare")
	case "reflect.DeepEqual":
		for _, arg := range call.Args {
			if isByteSlice(pass, arg) {
				pass.Reportf(call.Pos(),
					"reflect.DeepEqual on byte slices is variable-time; use hmac.Equal or subtle.ConstantTimeCompare")
				return
			}
		}
	}
}

// checkStringCompare flags string(a) == string(b) over byte slices —
// the compiler turns it into a memcmp, which is just as variable-time
// as bytes.Equal.
func checkStringCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if bytesToString(pass, b.X) || bytesToString(pass, b.Y) {
		pass.Reportf(b.Pos(),
			"string-conversion comparison of byte slices is variable-time; use hmac.Equal or subtle.ConstantTimeCompare")
	}
}

// bytesToString reports whether the expression is a string(x)
// conversion of a byte slice.
func bytesToString(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return false
	}
	return isByteSlice(pass, call.Args[0])
}

func isByteSlice(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
