package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// These tests run every experiment at reduced size and assert the *shapes*
// the paper predicts — they are the repository's headline-claim regression
// suite.

// cell parses a table cell as float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q is not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// findRow locates the first row whose first cell equals name.
func findRow(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("%s: no row %q", tab.ID, name)
	return -1
}

func TestE1Shapes(t *testing.T) {
	tab, err := RunE1(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic-index schemes: advantage near 1.
	for _, name := range []string{"bucket", "damiani", "detph"} {
		if adv := cell(t, tab, findRow(t, tab, name), 2); adv < 0.8 {
			t.Errorf("E1 %s advantage %v, want ≈ 1", name, adv)
		}
	}
	// Both secure instantiations: advantage near 0.
	for _, name := range []string{"swp-ph", "goh-ph"} {
		if adv := cell(t, tab, findRow(t, tab, name), 2); adv > 0.35 || adv < -0.35 {
			t.Errorf("E1 %s advantage %v, want ≈ 0", name, adv)
		}
	}
}

func TestE2Shapes(t *testing.T) {
	tab, err := RunE2(400, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Against the paper's construction the attack must beat blind
	// guessing: leakage despite q=0-security.
	row := findRow(t, tab, "swp-ph")
	attackErr := cell(t, tab, row, 4)
	blindErr := cell(t, tab, row, 5)
	if attackErr >= blindErr {
		t.Errorf("E2: attack error %v not better than blind %v", attackErr, blindErr)
	}
	if qid := cell(t, tab, row, 1); qid < 0.5 {
		t.Errorf("E2: query identification rate %v too low", qid)
	}
}

func TestE3Shapes(t *testing.T) {
	tab, err := RunE3(300, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, tab, "swp-ph")
	if hosp := cell(t, tab, row, 2); hosp < 0.8 {
		t.Errorf("E3: hospital recovery %v, want ≈ 1", hosp)
	}
	if out := cell(t, tab, row, 3); out < 0.8 {
		t.Errorf("E3: outcome recovery %v, want ≈ 1", out)
	}
}

func TestE4Shapes(t *testing.T) {
	tab, err := RunE4(60, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		q, err := strconv.Atoi(row[0])
		if err != nil {
			t.Fatal(err)
		}
		adv, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if q == 0 && (adv > 0.35 || adv < -0.35) {
			t.Errorf("E4 q=0 %s: advantage %v, want ≈ 0 (the security claim)", row[1], adv)
		}
		if q > 0 && adv < 0.9 {
			t.Errorf("E4 q=%d %s: advantage %v, want ≈ 1 (Theorem 2.1)", q, row[1], adv)
		}
	}
}

func TestE5Shapes(t *testing.T) {
	tab, err := RunE5(120000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rowOf := func(inst, param string) int {
		for i, r := range tab.Rows {
			if r[0] == inst && r[1] == param {
				return i
			}
		}
		t.Fatalf("no row %s/%s", inst, param)
		return -1
	}
	// SWP m=1: measured within a factor 3 of 1/256.
	m1 := cell(t, tab, rowOf("swp", "m=1"), 3)
	if m1 < 1.0/256/3 || m1 > 3.0/256 {
		t.Errorf("E5 swp m=1 measured %v, want ≈ %v", m1, 1.0/256)
	}
	// SWP m=3, m=4: zero false hits at this probe count.
	for _, param := range []string{"m=3", "m=4"} {
		if hits := cell(t, tab, rowOf("swp", param), 4); hits != 0 {
			t.Errorf("E5 swp %s: %v false hits, want 0", param, hits)
		}
	}
	// Goh 1e-2 target: measured within a factor 4 of theory.
	g := rowOf("goh", "fp=1e-02")
	theo := cell(t, tab, g, 2)
	meas := cell(t, tab, g, 3)
	if meas > 4*theo+1e-9 {
		t.Errorf("E5 goh fp=1e-02 measured %v far above theory %v", meas, theo)
	}
}

func TestE6Shapes(t *testing.T) {
	tab, err := RunE6([]int{200}, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Every scheme must return the same true result sizes as the
	// plaintext scan (correctness), and bucket's pre-filter result must
	// be at least the true result (false positives only inflate).
	plain := findRow(t, tab, "plaintext scan")
	trueSize := cell(t, tab, plain, 6)
	for _, name := range SchemeNames {
		row := findRow(t, tab, name)
		if got := cell(t, tab, row, 6); got != trueSize {
			t.Errorf("E6 %s true result %v, plaintext %v", name, got, trueSize)
		}
		if pre := cell(t, tab, row, 5); pre < trueSize {
			t.Errorf("E6 %s pre-filter %v smaller than true %v", name, pre, trueSize)
		}
	}
}

func TestE7NoMismatches(t *testing.T) {
	tab, err := RunE7(4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("E7 %s: %s homomorphism mismatches", row[0], row[3])
		}
	}
}

func TestE8Shapes(t *testing.T) {
	tab, err := RunE8([]int{64, 1024}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Errorf("E8 n=%s: tampering not detected", row[0])
		}
	}
	// Proof size grows logarithmically: 1024 leaves → ~10 hashes.
	h64 := cell(t, tab, 0, 1)
	h1024 := cell(t, tab, 1, 1)
	if h1024 > h64+6 || h1024 < h64 {
		t.Errorf("E8 proof growth not logarithmic: %v -> %v hashes", h64, h1024)
	}
}

func TestE9Shapes(t *testing.T) {
	tab, err := RunE9(400, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	base := cell(t, tab, findRow(t, tab, "detph"), 2)
	if rec := cell(t, tab, findRow(t, tab, "detph"), 1); rec < 0.9 {
		t.Errorf("E9 detph recovery %v, want ≈ 1", rec)
	}
	if rec := cell(t, tab, findRow(t, tab, "damiani"), 1); rec < base-0.3 {
		t.Errorf("E9 damiani recovery %v too low", rec)
	}
	// The paper's construction must leak nothing rankable: recovery well
	// below the guess-the-mode baseline.
	swpRec := cell(t, tab, findRow(t, tab, "swp-ph"), 1)
	swpBase := cell(t, tab, findRow(t, tab, "swp-ph"), 2)
	if swpRec > swpBase/2 {
		t.Errorf("E9 swp-ph recovery %v not far below baseline %v", swpRec, swpBase)
	}
}

func TestE10Shapes(t *testing.T) {
	tab, err := RunE10(200, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	fixed := cell(t, tab, 0, 1)
	varlen := cell(t, tab, 1, 1)
	if varlen >= fixed {
		t.Errorf("E10: variable-length layout (%v B/tuple) not smaller than fixed (%v)", varlen, fixed)
	}
	for i, row := range tab.Rows {
		if row[2] != "0" {
			t.Errorf("E10 row %d: %s select mismatches", i, row[2])
		}
		adv := cell(t, tab, i, 3)
		if adv > 0.35 || adv < -0.35 {
			t.Errorf("E10 row %d: salary-pair advantage %v, want ≈ 0", i, adv)
		}
	}
}

func TestE11Shapes(t *testing.T) {
	tab, err := RunE11(600, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	// q = 0: error equals the blind baseline, coverage zero.
	if first[1] != first[2] {
		t.Errorf("E11 q=0: error %s != blind %s", first[1], first[2])
	}
	if cov := cell(t, tab, 0, 3); cov != 0 {
		t.Errorf("E11 q=0 coverage %v, want 0", cov)
	}
	// Largest q: error well below blind, coverage high.
	lastErr := cell(t, tab, len(tab.Rows)-1, 1)
	lastBlind := cell(t, tab, len(tab.Rows)-1, 2)
	if lastErr > lastBlind/2 {
		t.Errorf("E11 q=%s: error %v not well below blind %v", last[0], lastErr, lastBlind)
	}
	if cov := cell(t, tab, len(tab.Rows)-1, 3); cov < 0.5 {
		t.Errorf("E11 q=%s coverage %v, want > 0.5", last[0], cov)
	}
}

func TestE12Shapes(t *testing.T) {
	tab, err := RunE12(300, 10, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range SchemeNames {
		row := findRow(t, tab, name)
		// Every scheme expands the plaintext (> 1x) but within reason.
		exp := cell(t, tab, row, 2)
		if exp <= 1 || exp > 20 {
			t.Errorf("E12 %s expansion %v implausible", name, exp)
		}
		if tok := cell(t, tab, row, 3); tok <= 0 || tok > 1024 {
			t.Errorf("E12 %s token bytes %v implausible", name, tok)
		}
	}
	// Bucketization ships false positives: its per-true-tuple result
	// bytes must exceed detph's (no false positives, same blob format).
	b := cell(t, tab, findRow(t, tab, "bucket"), 4)
	d := cell(t, tab, findRow(t, tab, "detph"), 4)
	if b <= d {
		t.Errorf("E12: bucket result bytes %v not above detph %v (false positives missing?)", b, d)
	}
}

func TestE13Shapes(t *testing.T) {
	// 2048 tuples: big enough to engage core.Evaluate's parallel path,
	// small enough for a test. Timing cells are machine noise and stay
	// unasserted; the allocation shape is the regression being pinned.
	tab, err := RunE13(2048, 13)
	if err != nil {
		t.Fatal(err)
	}
	seedRow := findRow(t, tab, "swp match: seed")
	engineRow := findRow(t, tab, "swp match: engine")
	if allocs := cell(t, tab, engineRow, 4); allocs != 0 {
		t.Errorf("E13: engine match path reports %v allocs/op, want 0", allocs)
	}
	if allocs := cell(t, tab, seedRow, 4); allocs == 0 {
		t.Error("E13: seed match path reports 0 allocs/op; the before/after comparison is broken")
	}
	if b := cell(t, tab, engineRow, 3); b != 0 {
		t.Errorf("E13: engine match path reports %v B/op, want 0", b)
	}
	// Both evaluate rows must be present with sane positive timings.
	for _, name := range []string{"core evaluate: serial engine", "core evaluate: parallel engine"} {
		if ns := cell(t, tab, findRow(t, tab, name), 2); ns <= 0 {
			t.Errorf("E13 %s: ns/op %v not positive", name, ns)
		}
	}
}

func TestE14Shapes(t *testing.T) {
	// 2048 tuples, 4 clients: big enough to engage the parallel scan and
	// genuine concurrency, small enough for a test. Absolute timings are
	// machine noise; the asserted shape is the ordering the cache must
	// produce (cached ≪ uncached, delta ≪ full rescan, engine p99 below
	// PR 1 p99) with a noise margin, plus the internal correctness gate
	// (RunE14 errors if cached results diverge from EvaluateSerial or the
	// delta path is never taken).
	tab, err := RunE14(2048, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	uncached := cell(t, tab, findRow(t, tab, "hot query: PR 1 (uncached full scan)"), 2)
	cached := cell(t, tab, findRow(t, tab, "hot query: engine (cached)"), 2)
	if cached <= 0 || uncached <= 0 {
		t.Fatalf("non-positive timings: uncached %v, cached %v", uncached, cached)
	}
	if cached*2 >= uncached {
		t.Errorf("E14: cached hot query %v ns not well below uncached %v ns", cached, uncached)
	}
	full := cell(t, tab, findRow(t, tab, "append+requery: PR 1 (full rescan)"), 2)
	delta := cell(t, tab, findRow(t, tab, "append+requery: engine (delta scan)"), 2)
	if delta*2 >= full {
		t.Errorf("E14: delta requery %v ns not well below full rescan %v ns", delta, full)
	}
	// p99 comes from only ~64 wall-clock samples per side, so on a loaded
	// CI box one scheduler stall can inflate the engine side; assert with
	// a 2x noise margin (the measured gap is >10x on an idle machine —
	// the report, not this test, carries the headline number).
	before := cell(t, tab, findRow(t, tab, "4-client p99: PR 1 (uncached, oversubscribed)"), 2)
	after := cell(t, tab, findRow(t, tab, "4-client p99: engine (cache + budget)"), 2)
	if after >= 2*before {
		t.Errorf("E14: engine p99 %v ns not below PR 1 p99 %v ns even with noise margin", after, before)
	}
}

// findRowBy locates the first row matching every given (column, value)
// pair — E15 rows repeat the path name across writer counts.
func findRowBy(t *testing.T, tab *Table, want map[int]string) int {
	t.Helper()
	for i, r := range tab.Rows {
		ok := true
		for col, v := range want {
			if r[col] != v {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	t.Fatalf("%s: no row matching %v", tab.ID, want)
	return -1
}

func TestE15Shapes(t *testing.T) {
	// 4 writers, 20 appends each: enough concurrency to engage group
	// commit, small enough for a test. Absolute numbers are disk noise;
	// the asserted shape is (a) every row present with positive
	// throughput, (b) group commit at least matching the naive
	// fsync-per-record baseline it replaces at equal writers and equal
	// durability, and (c) fsync sharing actually recorded. RunE15 also
	// self-gates: it errors if an acknowledged append is lost across a
	// simulated crash.
	tab, err := RunE15(4, 20, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"naive fsync-per-record", "wal always", "wal interval", "wal never"} {
		for _, writers := range []string{"1", "4"} {
			row := findRowBy(t, tab, map[int]string{0: path, 1: writers})
			if ops := cell(t, tab, row, 2); ops <= 0 {
				t.Errorf("E15 %s/%s writers: non-positive throughput %v", path, writers, ops)
			}
			if p99 := cell(t, tab, row, 3); p99 < 0 {
				t.Errorf("E15 %s/%s writers: negative p99 %v", path, writers, p99)
			}
		}
	}
	// Wall-clock comparison with a generous noise floor: v9fs fsync
	// latency on a shared box is jittery and worst-case scheduling gives
	// group commit no overlap to share, so only a collapse well below
	// the baseline (not mere jitter) fails; the headline ratio lives in
	// the report notes, not here.
	naive := cell(t, tab, findRowBy(t, tab, map[int]string{0: "naive fsync-per-record", 1: "4"}), 2)
	grouped := cell(t, tab, findRowBy(t, tab, map[int]string{0: "wal always", 1: "4"}), 2)
	if grouped < naive/2 {
		t.Errorf("E15: 4-writer group commit (%v appends/s) collapsed below half the naive fsync-per-record baseline (%v appends/s)", grouped, naive)
	}
	if shared := cell(t, tab, findRowBy(t, tab, map[int]string{0: "wal always", 1: "4"}), 4); shared < 1 {
		t.Errorf("E15: group commit records/fsync %v, want >= 1", shared)
	}
}

func TestE17Shapes(t *testing.T) {
	// RunE17 self-gates hard: it errors unless the pushdown answers are
	// byte-identical to the legacy intersection AND the plaintext
	// reference, and unless both the bytes-over-wire and the end-to-end
	// latency improvements reach 5x. The shape asserted here is just
	// that both rows exist with positive, sane cells.
	tab, err := RunE17(10000, 17)
	if err != nil {
		t.Fatal(err)
	}
	legacy := findRow(t, tab, "legacy: SelectMany + client Intersect")
	push := findRow(t, tab, "pushdown: CmdQueryConj planner")
	for _, row := range []int{legacy, push} {
		if ns := cell(t, tab, row, 2); ns <= 0 {
			t.Errorf("E17 row %d: non-positive ns/op %v", row, ns)
		}
		if by := cell(t, tab, row, 3); by <= 0 {
			t.Errorf("E17 row %d: non-positive bytes/op %v", row, by)
		}
	}
	if cell(t, tab, legacy, 3) <= cell(t, tab, push, 3) {
		t.Error("E17: legacy path should move more bytes than pushdown")
	}
}

func TestE18Shapes(t *testing.T) {
	// RunE18 self-gates hard: it errors unless 2-follower read throughput
	// reaches 1.7x primary-only under the emulated capacity model, and
	// unless both the kill-a-replica and Byzantine-replica drills end
	// with answers bit-identical to the primary's. The shape asserted
	// here is just that the three scaling rows exist, read counts are
	// positive, and throughput never shrinks as nodes are added.
	tab, err := RunE18(1000, 6, 250*time.Millisecond, 18)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{
		findRow(t, tab, "primary only"),
		findRow(t, tab, "primary + 1 follower"),
		findRow(t, tab, "primary + 2 followers"),
	}
	var prev float64
	for i, row := range rows {
		if reads := cell(t, tab, row, 2); reads <= 0 {
			t.Errorf("E18 row %d: non-positive read count %v", row, reads)
		}
		rate := cell(t, tab, row, 3)
		if rate < prev {
			t.Errorf("E18: adding a node reduced throughput (%v -> %v reads/s at %d nodes)", prev, rate, i+1)
		}
		prev = rate
	}
}

func TestE20Shapes(t *testing.T) {
	// RunE20 self-gates hard: it errors unless the sharded answers are
	// bit-identical to the oracle's (and plaintext), unless 4-shard
	// aggregate cold-query throughput reaches 2.5x the single-process
	// oracle under the disclosed capacity model, and unless both halves
	// of the Byzantine-shard drill land (tampered follower quarantined
	// with reads still serving; tampered primary failing the whole
	// read). The shape asserted here is just that both rows exist with
	// positive read counts and the sharded rate is not below the
	// oracle's.
	tab, err := RunE20(1000, 6, 250*time.Millisecond, 20)
	if err != nil {
		t.Fatal(err)
	}
	oracle := findRow(t, tab, "single-process oracle")
	sharded := findRow(t, tab, "4-shard scatter-gather")
	for _, row := range []int{oracle, sharded} {
		if reads := cell(t, tab, row, 2); reads <= 0 {
			t.Errorf("E20 row %d: non-positive read count %v", row, reads)
		}
	}
	if cell(t, tab, sharded, 3) < cell(t, tab, oracle, 3) {
		t.Error("E20: sharded tier slower than the single-process oracle")
	}
}

func TestE21Shapes(t *testing.T) {
	// RunE21 self-gates hard: it errors unless every rider's answer is
	// byte-identical to core.EvaluateSerial (and matches the plaintext
	// selection as a multiset), unless the shared storm finishes within
	// 2x a single cold scan while the per-query storm takes at least 4x
	// the shared one, and unless the shared arm drew exactly one
	// scheduler-budget allotment per pass. The shape asserted here is
	// that all three arms report positive wall times in the expected
	// order.
	tab, err := RunE21(4096, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	single := findRow(t, tab, "single cold scan")
	shared := findRow(t, tab, "16-rider storm: shared pass")
	perQuery := findRow(t, tab, "16-rider storm: per-query scans")
	for _, row := range []int{single, shared, perQuery} {
		if ns := cell(t, tab, row, 2); ns <= 0 {
			t.Errorf("E21 row %d: non-positive wall time %v", row, ns)
		}
	}
	if cell(t, tab, perQuery, 2) <= cell(t, tab, shared, 2) {
		t.Error("E21: per-query storm not slower than the shared storm")
	}
}

func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "EX", Title: "t", Header: []string{"a"}, Notes: []string{"n"}}
	tab.AddRow("1")
	var sb strings.Builder
	if err := tab.JSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ID": "EX"`, `"Rows"`, `"1"`, `"n"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFactoryUnknown(t *testing.T) {
	if _, err := Factory("nope"); err == nil {
		t.Fatal("unknown scheme factory created")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "test",
		Header: []string{"a", "b"},
		Notes:  []string{"note"},
	}
	tab.AddRow("1", "2")
	var sb1, sb2 strings.Builder
	tab.Fprint(&sb1)
	tab.Markdown(&sb2)
	for _, out := range []string{sb1.String(), sb2.String()} {
		for _, want := range []string{"EX", "test", "a", "1", "note"} {
			if !strings.Contains(out, want) {
				t.Errorf("rendering missing %q:\n%s", want, out)
			}
		}
	}
}
