package replica

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// primary is a durable store behind a restartable in-process server,
// with a kill switch over every connection it handed to followers.
type primary struct {
	t    *testing.T
	path string

	mu    sync.Mutex
	store *storage.Store
	srv   *server.Server
	conns []net.Conn
}

func newPrimary(t *testing.T) *primary {
	t.Helper()
	p := &primary{t: t, path: filepath.Join(t.TempDir(), "wal.log")}
	st, err := storage.Open(p.path)
	if err != nil {
		t.Fatal(err)
	}
	p.store, p.srv = st, server.New(st, nil)
	t.Cleanup(func() { p.store.Close() })
	return p
}

// dial hands out a pipe served by the primary's *current* server, so a
// restart is transparent to redialing followers.
func (p *primary) dial() (*client.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.srv == nil {
		return nil, fmt.Errorf("primary is down")
	}
	cliSide, srvSide := net.Pipe()
	go p.srv.ServeConn(srvSide)
	p.conns = append(p.conns, cliSide, srvSide)
	return client.NewConn(cliSide), nil
}

// killConns severs every connection handed out so far — the follower
// sees a torn stream mid-ship and must redial and resume.
func (p *primary) killConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// restart closes the store and server and reopens the same log file,
// as a crashed-and-recovered primary would.
func (p *primary) restart() {
	p.t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	if err := p.store.Close(); err != nil {
		p.t.Fatal(err)
	}
	st, err := storage.Open(p.path)
	if err != nil {
		p.t.Fatal(err)
	}
	p.store, p.srv = st, server.New(st, nil)
}

func empSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
	)
}

func newScheme(t *testing.T) ph.Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(key, empSchema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// seed uploads n encrypted tuples to the primary under name.
func seed(t *testing.T, p *primary, s ph.Scheme, name string, n int) {
	t.Helper()
	tbl := relation.NewTable(empSchema())
	for i := 0; i < n; i++ {
		tbl.MustInsert(relation.String(fmt.Sprintf("emp%04d", i)), relation.String("HR"))
	}
	ct, err := s.EncryptTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.store.Put(name, ct); err != nil {
		t.Fatal(err)
	}
}

// appendOne appends one encrypted tuple to name on the primary.
func appendOne(t *testing.T, p *primary, s ph.Scheme, name string, i int) {
	t.Helper()
	tbl := relation.NewTable(empSchema())
	tbl.MustInsert(relation.String(fmt.Sprintf("apx%04d", i)), relation.String("IT"))
	ct, err := s.EncryptTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.store.Append(name, ct.Tuples); err != nil {
		t.Fatal(err)
	}
}

// waitConverged waits until the follower holds exactly the primary's
// state: same table list, and per table the same authenticated root.
// Root equality is the whole correctness claim of replication here —
// identical roots mean bit-identical tuples.
func waitConverged(t *testing.T, p *primary, f *Follower) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := f.WaitCaughtUp(time.Until(deadline)); err != nil {
			t.Fatal(err)
		}
		if sameState(p.store, f.Store()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged; status %+v", f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sameState(a, b *storage.Store) bool {
	la, lb := a.List(), b.List()
	if len(la) != len(lb) {
		return false
	}
	for _, info := range la {
		ra, _, _, err := a.Root(info.Name)
		if err != nil {
			return false
		}
		rb, _, _, err := b.Root(info.Name)
		if err != nil || !bytes.Equal(ra, rb) {
			return false
		}
	}
	return true
}

func fastOpts() Options {
	return Options{PollInterval: 2 * time.Millisecond}
}

// TestFollowerBootstrapsAndServesVerifiedReads: a fresh follower
// replays the primary's log and serves a verified read that checks out
// against a root pinned at the primary.
func TestFollowerBootstrapsAndServesVerifiedReads(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)

	// Create the table through a client DB so a root gets pinned.
	conn, err := p.dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	db := client.NewDB(conn, s, "emp")
	tbl := relation.NewTable(empSchema())
	tbl.MustInsert(relation.String("Ada"), relation.String("IT"))
	tbl.MustInsert(relation.String("Grace"), relation.String("HR"))
	if err := db.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}

	f := New(p.dial, fastOpts())
	defer f.Close()
	waitConverged(t, p, f)

	// Route the DB's reads through the follower only: a read-only server
	// over the follower's store, and no failover candidates besides it.
	fsrv := server.NewWithOptions(f.Store(), nil, server.Options{ReadOnly: true})
	db.AddReplica(func() (*client.Conn, error) {
		cliSide, srvSide := net.Pipe()
		go fsrv.ServeConn(srvSide)
		return client.NewConn(cliSide), nil
	})
	got, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatalf("verified read from follower: %v", err)
	}
	if got.Len() != 1 || got.Tuple(0)[0].Str() != "Grace" {
		t.Fatalf("follower answered wrong: %v", got)
	}
	if st := db.ReadStats(); st.ReplicaReads != 1 || st.PrimaryReads != 0 {
		t.Fatalf("read was not served by the follower: %+v", st)
	}
}

// TestFollowerResumesAfterTornStream: severing every connection while
// the follower is mid-tail leaves it with a cursor it resumes from —
// no reset, no divergence.
func TestFollowerResumesAfterTornStream(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 50)

	f := New(p.dial, fastOpts())
	defer f.Close()
	waitConverged(t, p, f)

	// Keep writing while repeatedly tearing the stream out from under
	// the follower.
	for i := 0; i < 10; i++ {
		appendOne(t, p, s, "emp", i)
		p.killConns()
	}
	waitConverged(t, p, f)
	if st := f.Status(); st.Resets != 0 {
		t.Fatalf("torn streams caused %d resets; the cursor should have survived", st.Resets)
	}
}

// TestFollowerRestartRebootstraps: a replacement follower (fresh store,
// as after a crash) bootstraps from scratch and converges.
func TestFollowerRestartRebootstraps(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 20)

	f := New(p.dial, fastOpts())
	waitConverged(t, p, f)
	f.Close()

	appendOne(t, p, s, "emp", 1)
	f2 := New(p.dial, fastOpts())
	defer f2.Close()
	waitConverged(t, p, f2)
}

// TestPrimaryRestartMidShip: the primary crashes and recovers between
// polls. Same log file, same epoch — the follower's cursor stays valid
// and replication continues without a reset.
func TestPrimaryRestartMidShip(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 30)

	f := New(p.dial, fastOpts())
	defer f.Close()
	waitConverged(t, p, f)

	p.restart()
	appendOne(t, p, s, "emp", 1)
	waitConverged(t, p, f)
	if st := f.Status(); st.Resets != 0 {
		t.Fatalf("primary restart caused %d resets; epoch is stable across restarts", st.Resets)
	}
}

// TestCompactionResetsFollower: compaction rotates the primary's log
// epoch; the follower must notice, reset, and re-bootstrap to the
// compacted state instead of silently diverging.
func TestCompactionResetsFollower(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 20)

	f := New(p.dial, fastOpts())
	defer f.Close()
	waitConverged(t, p, f)

	for i := 0; i < 5; i++ {
		appendOne(t, p, s, "emp", i)
	}
	if err := p.store.Compact(); err != nil {
		t.Fatal(err)
	}
	appendOne(t, p, s, "emp", 99)
	waitConverged(t, p, f)
	if st := f.Status(); st.Resets == 0 {
		t.Fatal("compaction rotated the epoch but the follower never reset")
	}
}

// TestFollowerAppliesConcurrentWrites hammers the primary while a
// follower tails it, then checks bit-identical convergence.
func TestFollowerAppliesConcurrentWrites(t *testing.T) {
	p := newPrimary(t)
	s := newScheme(t)
	seed(t, p, s, "emp", 5)

	f := New(p.dial, fastOpts())
	defer f.Close()

	for i := 0; i < 200; i++ {
		appendOne(t, p, s, "emp", i)
		if i%50 == 49 {
			seed(t, p, s, fmt.Sprintf("t%d", i), 3)
		}
	}
	waitConverged(t, p, f)
}
