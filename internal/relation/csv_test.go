package relation

import (
	"bytes"
	"strings"
	"testing"
)

const csvSample = `name:string:10,dept:string:5,salary:int:5
Montgomery,HR,7500
Ada,IT,9100
`

func TestReadCSV(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(csvSample), "emp")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("read %d tuples", tab.Len())
	}
	if tab.Schema().Name != "emp" || tab.Schema().NumColumns() != 3 {
		t.Fatalf("schema: %v", tab.Schema())
	}
	c, _ := tab.Schema().Column("salary")
	if c.Type != TypeInt || c.Width != 5 {
		t.Fatalf("salary column: %+v", c)
	}
	if tab.Tuple(1)[2].Integer() != 9100 {
		t.Fatalf("tuple 1: %v", tab.Tuple(1))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(csvSample), "emp")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "emp")
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(tab) {
		t.Fatalf("round trip changed the table:\n%v\nvs\n%v", back, tab)
	}
}

func TestReadCSVWidthInference(t *testing.T) {
	in := "name:string,salary:int\nMontgomery,7500\nJo,42\n"
	tab, err := ReadCSV(strings.NewReader(in), "emp")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := tab.Schema().Column("name")
	if c.Width != 10 {
		t.Fatalf("inferred name width = %d, want 10", c.Width)
	}
	c, _ = tab.Schema().Column("salary")
	if c.Width != 4 {
		t.Fatalf("inferred salary width = %d, want 4", c.Width)
	}
}

func TestReadCSVQuotedComma(t *testing.T) {
	in := "note:string:20\n\"hello, world\"\n"
	tab, err := ReadCSV(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Tuple(0)[0].Str() != "hello, world" {
		t.Fatalf("quoted field: %q", tab.Tuple(0)[0].Str())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "justaname\nx\n"},
		{"bad type", "a:float:3\n1.5\n"},
		{"bad width", "a:string:zero\nx\n"},
		{"negative width", "a:string:-1\nx\n"},
		{"arity mismatch", "a:string:3,b:int:3\nonly\n"},
		{"non-numeric int", "a:int:3\nxyz\n"},
		{"overflow", "a:string:2\ntoolong\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), "t"); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
