package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// SyncPolicy selects when acknowledged mutations reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs the log before acknowledging a mutation.
	// Concurrent writers share one fsync through group commit: writers
	// stage their records in the log writer's buffer and a single leader
	// flushes and syncs the whole batch, so N concurrent appends pay ~1
	// fsync, not N. A crash after an acknowledgement loses nothing.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges as soon as the record reaches the OS
	// (write(2)) and fsyncs in the background every Options.SyncInterval.
	// A crash loses at most the last interval of acknowledged mutations.
	SyncInterval
	// SyncNever acknowledges after write(2) and never fsyncs during
	// operation (only on Close and Compact). Crash durability is
	// whatever the OS happened to flush.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the flag spelling of a sync policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("storage: unknown sync policy %q (want always, interval or never)", s)
	}
}

// DefaultSyncInterval is the background fsync period under SyncInterval
// when Options.SyncInterval is zero.
const DefaultSyncInterval = 100 * time.Millisecond

// Options configure a durable store.
type Options struct {
	// Sync selects the log sync policy. The zero value is SyncAlways:
	// a store that calls itself durable defaults to being durable.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval;
	// zero selects DefaultSyncInterval. Ignored by the other policies.
	SyncInterval time.Duration
	// WrapLog, when set, wraps every append handle the store opens over
	// its log — the one opened at OpenOptions and every replacement
	// installed by Compact, Reset or InstallSnapshot. It is the fault
	// seam: internal/fault's File threads ENOSPC, fsync failures, torn
	// writes and crash points through it. Replay and shipping read the
	// log through separate read-only handles that are not wrapped.
	WrapLog func(LogFile) LogFile
}

// LogStats counts log writer activity, for observability and for
// verifying group commit actually shares fsyncs.
type LogStats struct {
	// Records is the number of records accepted by the log.
	Records uint64
	// Syncs is the number of fsyncs issued.
	Syncs uint64
}

// Log record format. Two generations coexist in one log:
//
//	v0 (legacy):  len:u32 | op:u8 | payload          — no integrity check
//	v1:           magic:0xD1 | op:u8 | len:u32 | crc32c:u32 | payload
//
// The v1 CRC (Castagnoli) covers op, len and payload, so a corrupt
// length or flipped payload byte is detected instead of silently
// misapplying the record or truncating everything after it. The two are
// distinguishable at any record boundary because a v0 length is capped
// at MaxFrameSize (64 MiB), so its first byte is at most 0x04 and can
// never equal the v1 magic. New records are always written as v1; v0 is
// replay-only, for logs written before the format existed.
const (
	walMagic    = 0xD1
	walV1HdrLen = 10
	walV0HdrLen = 5
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendWALRecord appends one v1 record to dst and returns the grown
// slice. Staging into a reused buffer is the allocation-free replacement
// for the old per-record append(hdr, payload...) copy.
func appendWALRecord(dst []byte, op byte, payload []byte) []byte {
	var hdr [walV1HdrLen]byte
	hdr[0] = walMagic
	hdr[1] = op
	binary.BigEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[1:6])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[6:10], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// LogFile is the slice of *os.File the log writer needs. Tests — and
// the fault-injection harness (internal/fault), through Options.WrapLog
// — substitute instrumented implementations to pin the sync ordering,
// the fsync sharing of group commit, and the store's behaviour under
// disk faults without relying on disk timing.
type LogFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// errLogClosed reports a mutation against a closed store's log.
var errLogClosed = errors.New("storage: log closed")

// walWriter owns all writes to the append-only log. It serialises
// record framing under its own mutex — never the store's — and
// implements the sync policies, including leader-based group commit for
// SyncAlways.
//
// Lock order: wr.mu and wr.sm are leaves; nothing is acquired while
// holding them. Callers may hold store or table locks when calling
// write, but never when calling waitDurable (the fsync wait must not
// block readers or unrelated writers).
type walWriter struct {
	policy   SyncPolicy
	interval time.Duration

	mu      sync.Mutex // guards f, pending/spare/scratch, off, wseq, recs, closed, werr
	f       LogFile
	pending []byte // staged v1 records awaiting the next group flush (SyncAlways)
	spare   []byte // double-buffer the flusher swaps in for pending
	scratch []byte // reused framing buffer for the direct-write policies
	off     int64  // bytes known fully written to f (for torn-write repair)
	wseq    uint64 // records accepted (staged or written) this process lifetime
	recs    uint64 // records in the current log file (replayed + accepted);
	// unlike wseq it survives restarts (seeded from replay) and resets on
	// Compact, so it is the log-shipping sequence space: a follower's
	// cursor indexes records of the current file, not of this process.
	closed bool
	werr   error // sticky: the log lost a record and can no longer be trusted

	sm      sync.Mutex // guards sseq, syncing, barrier, serr
	scond   *sync.Cond
	sseq    uint64 // records known durable (or superseded by a compacted log)
	syncing bool   // a group-commit leader is flushing+syncing
	barrier bool   // Close or Compact owns the file; no leader may start
	serr    error  // sticky: an fsync failed, acknowledged data may be lost

	syncs atomic.Uint64 // fsyncs issued, for LogStats

	stop chan struct{} // SyncInterval only: closes to stop the ticker
	done chan struct{} // SyncInterval only: ticker exit acknowledgement
}

// newWALWriter wraps an opened log file positioned for appends. size is
// the file's current byte length; recs is the number of records already
// in it (counted by replay), which seeds the log-shipping sequence.
func newWALWriter(f LogFile, size int64, recs uint64, opts Options) *walWriter {
	w := &walWriter{policy: opts.Sync, interval: opts.SyncInterval, f: f, off: size, recs: recs}
	if w.interval <= 0 {
		w.interval = DefaultSyncInterval
	}
	w.scond = sync.NewCond(&w.sm)
	if w.policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w
}

// write frames one record and makes it eligible for commit, returning
// its sequence number for waitDurable. Under SyncAlways the record is
// staged in the writer's buffer (the group-commit leader writes it);
// under the other policies it reaches the OS before write returns.
// Callers may hold table locks: this never blocks on disk under
// SyncAlways, and pays one buffered write(2) otherwise.
func (w *walWriter) write(op byte, payload []byte) (uint64, error) {
	// Replay rejects records above the wire frame cap as corruption, so
	// acknowledging one here would mean silently losing it — and
	// everything after it — on the next open. Refuse loudly instead.
	if len(payload) > wire.MaxFrameSize {
		return 0, fmt.Errorf("storage: log record of %d bytes exceeds maximum %d", len(payload), wire.MaxFrameSize)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errLogClosed
	}
	if w.werr != nil {
		return 0, w.werr
	}
	// A sticky fsync failure must refuse the mutation here, before the
	// caller applies it to memory. Under the deferred-sync policies
	// waitDurable never reports, so this is the only place the failure
	// can surface; under SyncAlways it stops records from piling into a
	// pending buffer no sync will ever drain (and the in-memory state
	// from drifting further from the durable one). Compact clears the
	// condition: the compacted file supersedes whatever the failed sync
	// missed.
	w.sm.Lock()
	serr := w.serr
	w.sm.Unlock()
	if serr != nil {
		return 0, serr
	}
	if w.policy == SyncAlways {
		w.pending = appendWALRecord(w.pending, op, payload)
		w.wseq++
		w.recs++
		return w.wseq, nil
	}
	w.scratch = appendWALRecord(w.scratch[:0], op, payload)
	if err := w.writeLocked(w.scratch); err != nil {
		return 0, err
	}
	w.wseq++
	w.recs++
	return w.wseq, nil
}

// records returns the log-shipping head: how many records the current
// log file holds once everything accepted reaches it.
func (w *walWriter) records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.recs
}

// writeLocked writes buf to the file, maintaining the known-good offset
// and repairing (truncating away) a torn partial write so the log stays
// parseable. Callers hold w.mu.
func (w *walWriter) writeLocked(buf []byte) error {
	n, err := w.f.Write(buf)
	if err == nil {
		w.off += int64(n)
		return nil
	}
	if n > 0 {
		if terr := w.f.Truncate(w.off); terr != nil {
			// The log now ends in garbage we cannot remove: refuse
			// further writes rather than strand every later record
			// behind an unparseable tail. Compact clears the condition
			// by rewriting the log.
			w.werr = fmt.Errorf("storage: log has a torn record that could not be repaired (write: %v, truncate: %v)", err, terr)
		}
	}
	return fmt.Errorf("storage: appending log record: %w", err)
}

// waitDurable blocks until the record with the given sequence number is
// durable per the policy. Under SyncAlways that means a group-commit
// flush+fsync covering seq has completed; the other policies
// acknowledge immediately. Callers must not hold store or table locks.
func (w *walWriter) waitDurable(seq uint64) error {
	if w.policy != SyncAlways {
		return nil
	}
	return w.syncUpTo(seq)
}

// syncUpTo drives group commit until seq is durable: the first waiter
// to find no flush in flight becomes the leader and commits everything
// staged so far; the rest wait and are usually covered by that same
// fsync.
func (w *walWriter) syncUpTo(seq uint64) error {
	w.sm.Lock()
	for w.sseq < seq && w.serr == nil {
		if w.syncing || w.barrier {
			w.scond.Wait()
			continue
		}
		w.syncing = true
		w.sm.Unlock()
		upto, err := w.flushAndSync()
		w.sm.Lock()
		w.syncing = false
		switch {
		case err == nil:
			if upto > w.sseq {
				w.sseq = upto
			}
		case errors.Is(err, os.ErrClosed):
			// The file was swapped (Compact) or closed under us; the
			// swap/close path marks our records durable itself.
		default:
			w.serr = fmt.Errorf("storage: syncing log: %w", err)
		}
		w.scond.Broadcast()
	}
	err := w.serr
	w.sm.Unlock()
	return err
}

// flushAndSync writes every staged record and fsyncs, returning the
// highest sequence number the fsync covers. Only one goroutine runs it
// at a time (the syncing flag), and Close/installFile raise the barrier
// and drain it first, so while it runs it is the sole writer to the
// file under SyncAlways — which is what lets it perform the write(2)
// and fsync with w.mu RELEASED: writers keep staging (they hold table
// or store locks while doing so) and never block behind the leader's
// disk I/O.
func (w *walWriter) flushAndSync() (uint64, error) {
	w.mu.Lock()
	buf := w.pending
	w.pending = w.spare[:0]
	upto := w.wseq
	f := w.f
	off := w.off
	w.mu.Unlock()
	var err error
	if len(buf) > 0 {
		n, werr := f.Write(buf)
		if werr == nil {
			w.mu.Lock()
			w.off += int64(n)
			w.mu.Unlock()
		} else {
			if n > 0 {
				// Erase the torn record so the log stays parseable; if
				// that fails too, poison the writer (Compact clears it).
				if terr := f.Truncate(off); terr != nil {
					w.mu.Lock()
					w.werr = fmt.Errorf("storage: log has a torn record that could not be repaired (write: %v, truncate: %v)", werr, terr)
					w.mu.Unlock()
				}
			}
			err = fmt.Errorf("storage: appending log record: %w", werr)
		}
	}
	if err == nil {
		if err = f.Sync(); err == nil {
			w.syncs.Add(1)
		}
	}
	// Recycle the flushed buffer as the next spare, unless one huge
	// batch grew it past what is worth pinning.
	if cap(buf) <= maxPendingBuf {
		w.mu.Lock()
		w.spare = buf[:0]
		w.mu.Unlock()
	}
	return upto, err
}

// maxPendingBuf caps the staging buffers the writer keeps across
// commits (the buffers still grow arbitrarily within one batch).
const maxPendingBuf = 1 << 20

// syncLoop is the SyncInterval background fsync. It reuses the group
// commit path so a concurrent Compact or Close coordinates with it the
// same way it does with SyncAlways leaders.
func (w *walWriter) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			seq := w.wseq
			w.mu.Unlock()
			w.sm.Lock()
			covered := w.sseq >= seq
			w.sm.Unlock()
			if !covered {
				w.syncUpTo(seq)
			}
		}
	}
}

// syncNow forces everything accepted so far onto stable storage,
// regardless of policy. Used by Store.Sync and on Close.
func (w *walWriter) syncNow() error {
	w.mu.Lock()
	seq := w.wseq
	w.mu.Unlock()
	return w.syncUpTo(seq)
}

// installFile swaps in a freshly compacted log file whose contents
// already reflect every accepted record and are already fsynced. The
// caller (Compact) guarantees no concurrent write(). Everything staged
// or unsynced is superseded by the new file, so pending is discarded,
// all waiters are released as durable, and sticky errors are cleared —
// compaction un-bricks a store whose old log failed. The old file is
// closed; a failure to close it is returned but leaves the store fully
// usable on the new log. recs is the new file's record count, which
// restarts the log-shipping sequence space.
func (w *walWriter) installFile(f LogFile, size int64, recs uint64) error {
	w.sm.Lock()
	w.barrier = true
	for w.syncing {
		w.scond.Wait()
	}
	w.sm.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.sm.Lock()
		w.barrier = false
		w.scond.Broadcast()
		w.sm.Unlock()
		_ = f.Close()
		return errLogClosed
	}
	old := w.f
	w.f = f
	w.off = size
	w.recs = recs
	w.pending = w.pending[:0]
	w.werr = nil
	seq := w.wseq
	w.mu.Unlock()

	w.sm.Lock()
	w.barrier = false
	if seq > w.sseq {
		//phlint:ignore syncack rotateLog fsynced the replacement file before handing it to installFile
		w.sseq = seq
	}
	w.serr = nil
	w.scond.Broadcast()
	w.sm.Unlock()

	if err := old.Close(); err != nil {
		return fmt.Errorf("storage: closing pre-compaction log: %w", err)
	}
	return nil
}

// Close flushes staged records, fsyncs (a clean shutdown is durable
// even under SyncInterval and SyncNever), and closes the file. Later
// writes fail with errLogClosed; waiters racing Close are released once
// the final fsync covers them.
func (w *walWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true // stops new staging/writes
	w.mu.Unlock()

	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	// Raise the barrier and drain any in-flight group commit, so from
	// here on this goroutine is the file's only writer.
	w.sm.Lock()
	w.barrier = true
	for w.syncing {
		w.scond.Wait()
	}
	w.sm.Unlock()

	w.mu.Lock()
	f := w.f
	buf := w.pending
	w.pending = nil
	var werr error
	if len(buf) > 0 {
		werr = w.writeLocked(buf)
	}
	w.mu.Unlock()
	serr := f.Sync()
	if serr == nil {
		w.syncs.Add(1)
	}
	cerr := f.Close()

	w.sm.Lock()
	w.barrier = false
	if serr == nil && werr == nil {
		w.sseq = ^uint64(0) // everything accepted is durable
	} else if w.serr == nil {
		w.serr = fmt.Errorf("storage: final log sync failed: %w", errors.Join(werr, serr))
	}
	w.scond.Broadcast()
	w.sm.Unlock()

	if werr != nil {
		return werr
	}
	if serr != nil {
		return fmt.Errorf("storage: syncing log on close: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("storage: closing log: %w", cerr)
	}
	return nil
}

// stats returns the writer's activity counters.
func (w *walWriter) stats() LogStats {
	w.mu.Lock()
	recs := w.wseq
	w.mu.Unlock()
	return LogStats{Records: recs, Syncs: w.syncs.Load()}
}
