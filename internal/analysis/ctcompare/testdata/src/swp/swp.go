// Fixture for the ctcompare analyzer, shaped like the SWP matcher bug:
// a PRF checksum compared with bytes.Equal.
package swp

import (
	"bytes"
	"crypto/hmac"
	"crypto/subtle"
	"reflect"
)

// matchHostile is the internal/swp/matcher.go regression shape: the
// early-exit comparison hands an adaptive adversary a byte-at-a-time
// oracle against the PRF key.
func matchHostile(got, want []byte) bool {
	return bytes.Equal(got, want) // want `timing oracle`
}

func matchDeepEqual(got, want []byte) bool {
	return reflect.DeepEqual(got, want) // want `variable-time`
}

func matchStringCompare(got, want []byte) bool {
	return string(got) == string(want) // want `variable-time`
}

// matchConstantTime is clean: hmac.Equal examines every byte.
func matchConstantTime(got, want []byte) bool {
	return hmac.Equal(got, want)
}

// matchSubtle is clean too.
func matchSubtle(got, want []byte) bool {
	return subtle.ConstantTimeCompare(got, want) == 1
}

// deepEqualStruct is clean: DeepEqual over non-byte-slice values is
// outside this invariant.
func deepEqualStruct(a, b map[string]int) bool {
	return reflect.DeepEqual(a, b)
}

// rootsMatch takes the documented exception for public commitments.
func rootsMatch(localRoot, signedRoot []byte) bool {
	//phlint:ignore ctcompare Merkle roots are public commitments, not secrets
	return bytes.Equal(localRoot, signedRoot)
}
