package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/swp"
)

// SchemeID is the evaluator-registry name of the paper's construction.
const SchemeID = "swp-ph"

// docIDLen is the length of the random per-tuple document identifier.
const docIDLen = 16

// Options tunes the construction.
type Options struct {
	// ChecksumLen is the SWP checksum width m in bytes; the per-slot
	// false-positive probability is 2^(-8m). Zero selects
	// DefaultChecksumLen. Columns too narrow for the requested width use
	// the largest width they admit (wordLen-1).
	ChecksumLen int
	// PerColumnWidth enables the "attributes of variable length"
	// optimisation the paper defers to its full version: words are padded
	// to their own column's width instead of the global maximum.
	// Ciphertext shrinks accordingly, at a documented leakage cost: the
	// *length* of a cipherword then reveals which column it encodes
	// (values are still padded within the column, so value lengths stay
	// hidden). The default (false) is the paper's §3 layout.
	PerColumnWidth bool
}

// DefaultChecksumLen (m = 2 bytes) gives a per-slot false-positive rate of
// 2^-16 ≈ 1.5e-5, "relatively small for all practical purposes" (§3).
const DefaultChecksumLen = 2

// PH is the paper's database privacy homomorphism (K, E, Eq, D) over a fixed
// relation schema, instantiated with the SWP searchable encryption scheme.
// It implements ph.Scheme. A PH value holds secret keys and must stay on
// Alex's side; everything it emits (ph.EncryptedTable, ph.EncryptedQuery) is
// safe to hand to Eve.
type PH struct {
	layout  *layout
	schemes map[int]*swp.Scheme // one SWP instance per distinct word length
	meta    []byte
}

// New derives a PH instance for the schema from a master key. One SWP
// instance is derived per distinct word length (a single one in the default
// fixed layout), each under its own domain-separated subkey.
func New(master crypto.Key, schema *relation.Schema, opts Options) (*PH, error) {
	l, err := newLayout(schema, opts.PerColumnWidth)
	if err != nil {
		return nil, err
	}
	m := opts.ChecksumLen
	if m == 0 {
		m = DefaultChecksumLen
	}
	if m < 1 {
		return nil, fmt.Errorf("core: checksum length must be positive, got %d", m)
	}
	p := &PH{layout: l, schemes: make(map[int]*swp.Scheme)}
	root := crypto.NewPRF(master)
	for _, n := range l.wordLengths() {
		params := swp.Params{WordLen: n, ChecksumLen: checksumFor(n, m)}
		sub, err := swp.New(root.DeriveKey(fmt.Sprintf("core/len/%d", n), nil), params)
		if err != nil {
			return nil, err
		}
		p.schemes[n] = sub
	}
	p.meta = encodeMeta(p.params())
	return p, nil
}

// checksumFor clamps the requested checksum width to what a word length
// admits (SWP needs 1 <= m < n).
func checksumFor(wordLen, m int) int {
	if m >= wordLen {
		return wordLen - 1
	}
	return m
}

// params collects the public per-length SWP parameters, sorted by word
// length.
func (p *PH) params() []swp.Params {
	var out []swp.Params
	for _, n := range p.layout.wordLengths() {
		out = append(out, p.schemes[n].Params())
	}
	return out
}

// Name implements ph.Scheme.
func (p *PH) Name() string { return SchemeID }

// Schema implements ph.Scheme.
func (p *PH) Schema() *relation.Schema { return p.layout.schema }

// Params returns the public SWP parameters of the instance, one entry per
// distinct word length (a single entry in the fixed layout).
func (p *PH) Params() []swp.Params { return p.params() }

// schemeForCol returns the SWP instance handling a column's words.
func (p *PH) schemeForCol(col int) *swp.Scheme {
	return p.schemes[p.layout.wordLenFor(col)]
}

// schemeForWord returns the SWP instance handling a cipherword, by length.
func (p *PH) schemeForWord(w []byte) (*swp.Scheme, error) {
	s, ok := p.schemes[len(w)]
	if !ok {
		return nil, fmt.Errorf("core: no scheme for word length %d", len(w))
	}
	return s, nil
}

// EncryptTable implements E of Definition 1.1: tuple-by-tuple encryption.
// Each tuple becomes an SWP document under a fresh random document ID, with
// the attribute words in a fresh random order (the paper models documents as
// *sets* of words; randomising the order makes that literal). The tuples
// themselves are also emitted in random order, so the ciphertext reveals
// nothing about insertion order.
func (p *PH) EncryptTable(t *relation.Table) (*ph.EncryptedTable, error) {
	if !t.Schema().Equal(p.layout.schema) {
		return nil, fmt.Errorf("core: table schema %q does not match instance schema %q",
			t.Schema().Name, p.layout.schema.Name)
	}
	et := &ph.EncryptedTable{
		SchemeID: SchemeID,
		Meta:     append([]byte(nil), p.meta...),
		Tuples:   make([]ph.EncryptedTuple, 0, t.Len()),
	}
	order, err := randomPerm(t.Len())
	if err != nil {
		return nil, err
	}
	for _, ti := range order {
		etp, err := p.encryptTuple(t.Tuple(ti))
		if err != nil {
			return nil, err
		}
		et.Tuples = append(et.Tuples, etp)
	}
	return et, nil
}

// encryptTuple maps one tuple to its encrypted document.
func (p *PH) encryptTuple(tp relation.Tuple) (ph.EncryptedTuple, error) {
	docID := make([]byte, docIDLen)
	if _, err := rand.Read(docID); err != nil {
		return ph.EncryptedTuple{}, fmt.Errorf("core: drawing document id: %w", err)
	}
	perm, err := randomPerm(len(tp))
	if err != nil {
		return ph.EncryptedTuple{}, err
	}
	cipherwords := make([][]byte, len(tp))
	for pos, col := range perm {
		w, err := p.layout.makeWord(col, tp[col])
		if err != nil {
			return ph.EncryptedTuple{}, err
		}
		cw, err := p.schemeForCol(col).EncryptWord(docID, uint64(pos), w)
		if err != nil {
			return ph.EncryptedTuple{}, err
		}
		cipherwords[pos] = cw
	}
	return ph.EncryptedTuple{ID: docID, Words: cipherwords}, nil
}

// EncryptQuery implements Eq of Definition 1.1: the exact select
// σ_attr:value becomes the SWP search ϕ_{value|pad|attr-id}.
func (p *PH) EncryptQuery(q relation.Eq) (*ph.EncryptedQuery, error) {
	if err := q.Validate(p.layout.schema); err != nil {
		return nil, err
	}
	col := p.layout.schema.ColumnIndex(q.Column)
	w, err := p.layout.makeWord(col, q.Value)
	if err != nil {
		return nil, err
	}
	td, err := p.schemeForCol(col).NewTrapdoor(w)
	if err != nil {
		return nil, err
	}
	return &ph.EncryptedQuery{SchemeID: SchemeID, Token: encodeTrapdoor(td)}, nil
}

// decryptTuple reconstructs a plaintext tuple from its encrypted document.
func (p *PH) decryptTuple(etp ph.EncryptedTuple) (relation.Tuple, error) {
	if len(etp.Words) != p.layout.schema.NumColumns() {
		return nil, fmt.Errorf("core: document has %d words, schema has %d columns",
			len(etp.Words), p.layout.schema.NumColumns())
	}
	tp := make(relation.Tuple, p.layout.schema.NumColumns())
	seen := make([]bool, len(tp))
	for pos, cw := range etp.Words {
		s, err := p.schemeForWord(cw)
		if err != nil {
			return nil, err
		}
		w, err := s.DecryptWord(etp.ID, uint64(pos), cw)
		if err != nil {
			return nil, err
		}
		col, v, err := p.layout.parseWord(w)
		if err != nil {
			return nil, err
		}
		if seen[col] {
			return nil, fmt.Errorf("core: document contains column %q twice", p.layout.schema.Columns[col].Name)
		}
		seen[col] = true
		tp[col] = v
	}
	return tp, nil
}

// DecryptTable implements D of Definition 1.1 on whole tables.
func (p *PH) DecryptTable(ct *ph.EncryptedTable) (*relation.Table, error) {
	if ct.SchemeID != SchemeID {
		return nil, fmt.Errorf("core: cannot decrypt table of scheme %q", ct.SchemeID)
	}
	t := relation.NewTable(p.layout.schema)
	for i, etp := range ct.Tuples {
		tp, err := p.decryptTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting tuple %d: %w", i, err)
		}
		if err := t.Insert(tp); err != nil {
			return nil, fmt.Errorf("core: decrypted tuple %d invalid: %w", i, err)
		}
	}
	return t, nil
}

// DecryptResult decrypts the server's answer to query q and filters false
// positives by re-evaluating the plaintext predicate, exactly as §3
// prescribes ("Alex needs to run a filter on the output").
func (p *PH) DecryptResult(q relation.Eq, r *ph.Result) (*relation.Table, error) {
	t := relation.NewTable(p.layout.schema)
	for i, etp := range r.Tuples {
		tp, err := p.decryptTuple(etp)
		if err != nil {
			return nil, fmt.Errorf("core: decrypting result tuple %d: %w", i, err)
		}
		ok, err := q.Eval(p.layout.schema, tp)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // false positive from the SWP checksum; drop it
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// parallelThreshold is the tuple count below which Evaluate stays
// single-threaded: sharding a small scan across goroutines costs more than
// the scan itself.
const parallelThreshold = 1024

// Evaluate is ψ: the key-free server-side search. It is exported for direct
// use and also registered as the package's ph.Evaluator. A tuple matches if
// any of its cipherwords of the trapdoor's length matches the trapdoor.
//
// Large tables are sharded into contiguous chunks across a worker pool
// drawn from the process-wide scheduler budget (internal/sched), one
// allocation-free swp.Matcher clone per worker. The calling goroutine is
// always the first worker — so a query on a saturated server degrades to a
// single-threaded scan instead of blocking — and extra workers, up to
// GOMAXPROCS per query, come from the budget's spare capacity, which
// bounds total scan parallelism across all concurrent queries. Chunk
// results merge in table order, so the output is byte-identical to the
// serial scan.
func Evaluate(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	td, params, err := decodeQueryToken(et.Meta, q.Token)
	if err != nil {
		return nil, err
	}
	positions := shardScan(len(et.Tuples), swp.NewMatcher(params, td),
		func(lo, hi int, m *swp.Matcher) []int {
			return MatchTuples(et.Tuples[lo:hi], lo, m, make([]int, 0, PositionsCap(hi-lo)))
		})
	return ph.SelectPositions(et, positions), nil
}

// shardScan runs scan over contiguous chunks of [0, n) and merges the
// per-chunk hit lists in chunk order, so the output is byte-identical
// to scan(0, n, base). Small inputs (or a single-CPU process) stay
// single-threaded; larger ones shard across a worker pool drawn from
// the process-wide scheduler budget. The calling goroutine is always
// the first worker — a query on a saturated server degrades to a
// single-threaded scan instead of blocking — scanning chunk 0 with the
// base Matcher; each extra worker gets its own allocation-free clone.
func shardScan(n int, base *swp.Matcher, scan func(lo, hi int, m *swp.Matcher) []int) []int {
	if n < parallelThreshold || runtime.GOMAXPROCS(0) < 2 {
		return scan(0, n, base)
	}
	budget := sched.Process()
	workers := budget.Acquire(runtime.GOMAXPROCS(0))
	defer budget.Release(workers)
	if workers < 2 {
		return scan(0, n, base)
	}
	results := make([][]int, workers)
	matchers := make([]*swp.Matcher, workers)
	matchers[0] = base
	for w := 1; w < workers; w++ {
		matchers[w] = base.Clone()
	}
	ShardWindow(workers, 0, n, func(lo, hi, slot int) {
		results[slot] = scan(lo, hi, matchers[slot])
	})
	total := 0
	for _, r := range results {
		total += len(r)
	}
	hits := make([]int, 0, total)
	for _, r := range results {
		hits = append(hits, r...)
	}
	return hits
}

// ShardWindow splits the tuple window [lo, hi) into up to workers
// contiguous chunks and runs scan(chunkLo, chunkHi, slot) on each, slot 0
// on the calling goroutine and every other slot on its own goroutine. It
// returns when all chunks are done. Slots are dense in [0, workers): a
// caller can pre-provision one Matcher (or result buffer) per slot and
// know exactly which goroutine touches it, which is how scans stay
// allocation-free and data-race-free without locks.
//
// ShardWindow deliberately performs NO scheduler-budget accounting — the
// caller owns the worker allotment. That split is what lets a shared scan
// pass (internal/scanshare) amortise ONE budget Acquire over an entire
// multi-rider pass instead of drawing per query, while core's own
// shardScan keeps its draw-per-scan behaviour on top of the same
// primitive.
func ShardWindow(workers, lo, hi int, scan func(lo, hi, slot int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		scan(lo, hi, 0)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		clo := lo + w*chunk
		if clo >= hi {
			break
		}
		chi := min(clo+chunk, hi)
		wg.Add(1)
		go func(clo, chi, slot int) {
			defer wg.Done()
			scan(clo, chi, slot)
		}(clo, chi, w)
	}
	scan(lo, lo+chunk, 0)
	wg.Wait()
}

// TokenMatcher decodes an encrypted query's token against a table's
// metadata and returns the ready-to-scan ψ matcher. The matcher (like the
// trapdoor it wraps) aliases the token, so the caller must keep the token
// alive for the matcher's life; a Matcher is not goroutine-safe — Clone
// per extra worker. This is the admission-side half of Evaluate, exported
// for the scan-sharing layer, which decodes once per rider and then scans
// many riders inside one pass.
func TokenMatcher(meta, token []byte) (*swp.Matcher, error) {
	td, params, err := decodeQueryToken(meta, token)
	if err != nil {
		return nil, err
	}
	return swp.NewMatcher(params, td), nil
}

// EvaluateSerial is the single-threaded reference implementation of
// Evaluate. It exists for differential tests and as the before-side of the
// parallel-speedup benchmarks; Evaluate must always produce the same result.
func EvaluateSerial(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	td, params, err := decodeQueryToken(et.Meta, q.Token)
	if err != nil {
		return nil, err
	}
	m := swp.NewMatcher(params, td)
	positions := MatchTuples(et.Tuples, 0, m, make([]int, 0, PositionsCap(len(et.Tuples))))
	return ph.SelectPositions(et, positions), nil
}

// EvaluateOn is the candidate-restricted ψ behind the conjunctive
// planner: it tests only the tuples at the given ascending candidate
// positions and returns the ascending subsequence that matched. Cost is
// O(len(candidates)) match tests instead of a full table scan, which is
// what turns a k-conjunct query from k full scans into one full scan
// plus narrowing passes over the survivors. Nil candidates select the
// whole table (the Narrower contract): a positions-only scan with no
// candidate list materialised or validated — Evaluate's scan without
// the tuple cloning its Result carries. Large inputs shard across the
// same scheduler-budget worker pool as Evaluate, one allocation-free
// Matcher clone per worker, and chunk results merge in order, so the
// output is deterministic.
func EvaluateOn(et *ph.EncryptedTable, q *ph.EncryptedQuery, candidates []int) ([]int, error) {
	td, params, err := decodeQueryToken(et.Meta, q.Token)
	if err != nil {
		return nil, err
	}
	n := len(et.Tuples)
	if candidates == nil {
		return shardScan(n, swp.NewMatcher(params, td),
			func(lo, hi int, m *swp.Matcher) []int {
				return MatchTuples(et.Tuples[lo:hi], lo, m, make([]int, 0, PositionsCap(hi-lo)))
			}), nil
	}
	for i, p := range candidates {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("core: candidate position %d out of range [0, %d)", p, n)
		}
		if i > 0 && candidates[i-1] >= p {
			return nil, fmt.Errorf("core: candidate positions not strictly ascending at index %d", i)
		}
	}
	return shardScan(len(candidates), swp.NewMatcher(params, td),
		func(lo, hi int, m *swp.Matcher) []int {
			return scanCandidates(et.Tuples, candidates[lo:hi], m, make([]int, 0, (hi-lo)/2+4))
		}), nil
}

// scanCandidates appends every candidate position whose tuple matches,
// reusing one Matcher across the pass.
func scanCandidates(tuples []ph.EncryptedTuple, candidates []int, m *swp.Matcher, hits []int) []int {
	for _, p := range candidates {
		for _, cw := range tuples[p].Words {
			if m.Match(cw) {
				hits = append(hits, p)
				break
			}
		}
	}
	return hits
}

// MatchTuples appends base+i to hits for every tuple in tuples whose
// document matches, reusing one Matcher across the whole chunk. The
// Matcher rejects cipherwords of other lengths itself, which is how
// mixed-width documents (PerColumnWidth layouts) skip non-candidate
// words. Exported for the scan-sharing layer, whose pass runs this exact
// loop once per (rider, chunk) so shared results stay byte-identical to
// EvaluateSerial per rider.
func MatchTuples(tuples []ph.EncryptedTuple, base int, m *swp.Matcher, hits []int) []int {
	for i := range tuples {
		for _, cw := range tuples[i].Words {
			if m.Match(cw) {
				hits = append(hits, base+i)
				break
			}
		}
	}
	return hits
}

// PositionsCap sizes the hit slice for a scan of n tuples: exact selects
// usually return a small fraction of the table, so reserve an eighth (plus
// slack for tiny tables) and let append grow the rare broad result.
func PositionsCap(n int) int {
	return n/8 + 8
}

func init() {
	ph.RegisterEvaluator(SchemeID, Evaluate)
	ph.RegisterNarrower(SchemeID, EvaluateOn)
}

// metaVersion tags the table-metadata encoding.
const metaVersion = 2

// encodeMeta serialises the public per-length SWP parameters carried on
// every encrypted table: version, count, then (wordLen, checksumLen) pairs.
func encodeMeta(params []swp.Params) []byte {
	meta := make([]byte, 0, 2+4*len(params))
	meta = append(meta, metaVersion)
	meta = append(meta, byte(len(params)))
	var u16 [2]byte
	for _, p := range params {
		binary.BigEndian.PutUint16(u16[:], uint16(p.WordLen))
		meta = append(meta, u16[:]...)
		binary.BigEndian.PutUint16(u16[:], uint16(p.ChecksumLen))
		meta = append(meta, u16[:]...)
	}
	return meta
}

// metaPairs validates the metadata header and returns the number of
// (wordLen, checksumLen) pairs it carries.
func metaPairs(meta []byte) (int, error) {
	if len(meta) < 2 {
		return 0, fmt.Errorf("core: table meta of %d bytes too short", len(meta))
	}
	if meta[0] != metaVersion {
		return 0, fmt.Errorf("core: unsupported table meta version %d", meta[0])
	}
	n := int(meta[1])
	if len(meta) != 2+4*n {
		return 0, fmt.Errorf("core: table meta of %d bytes does not hold %d parameter pairs", len(meta), n)
	}
	if n == 0 {
		return 0, fmt.Errorf("core: table meta declares no word lengths")
	}
	return n, nil
}

// metaParam reads parameter pair i from validated metadata.
func metaParam(meta []byte, i int) swp.Params {
	return swp.Params{
		WordLen:     int(binary.BigEndian.Uint16(meta[2+4*i:])),
		ChecksumLen: int(binary.BigEndian.Uint16(meta[4+4*i:])),
	}
}

// encodeTrapdoor serialises an SWP trapdoor as X || K; the X length is
// recovered from the token length (K is fixed-size).
func encodeTrapdoor(td swp.Trapdoor) []byte {
	out := make([]byte, 0, len(td.X)+len(td.K))
	out = append(out, td.X...)
	return append(out, td.K...)
}

// decodeQueryToken parses a serialised trapdoor and resolves its
// parameters directly against the raw table metadata, with no intermediate
// word-length map — Evaluate runs once per query, and a map would be the
// query path's last avoidable per-call allocation. The trapdoor aliases
// the token (no copies), so the caller must keep the token alive for the
// trapdoor's life. All parameter pairs are validated and duplicate word
// lengths rejected before the lookup result is used.
func decodeQueryToken(meta, token []byte) (swp.Trapdoor, swp.Params, error) {
	n, err := metaPairs(meta)
	if err != nil {
		return swp.Trapdoor{}, swp.Params{}, err
	}
	xLen := len(token) - crypto.KeySize
	if xLen < 2 {
		return swp.Trapdoor{}, swp.Params{}, fmt.Errorf("core: trapdoor token of %d bytes too short", len(token))
	}
	var params swp.Params
	found := false
	for i := 0; i < n; i++ {
		p := metaParam(meta, i)
		if err := p.Validate(); err != nil {
			return swp.Trapdoor{}, swp.Params{}, err
		}
		for j := 0; j < i; j++ {
			if metaParam(meta, j).WordLen == p.WordLen {
				return swp.Trapdoor{}, swp.Params{}, fmt.Errorf("core: table meta repeats word length %d", p.WordLen)
			}
		}
		if p.WordLen == xLen {
			params, found = p, true
		}
	}
	if !found {
		return swp.Trapdoor{}, swp.Params{}, fmt.Errorf("core: trapdoor word length %d unknown to this table", xLen)
	}
	return swp.Trapdoor{X: token[:xLen], K: token[xLen:]}, params, nil
}

// randomPerm draws a uniformly random permutation of [0, n) using
// crypto/rand (Fisher–Yates). Encryption-side randomness must not come from
// a seedable generator, or ciphertext order would become a side channel.
func randomPerm(n int) ([]int, error) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("core: drawing permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}
