// Package client implements Alex: the trusted client library. The low-level
// Conn speaks the wire protocol; the high-level DB wraps a database privacy
// homomorphism (ph.Scheme) so that applications work entirely in plaintext
// terms — plaintext tables in, plaintext results out — while nothing but
// ciphertext ever crosses the connection.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Conn is a low-level protocol connection. It is not safe for concurrent
// use; wrap it in your own mutex or pool connections.
type Conn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server address.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	return NewConn(c), nil
}

// NewConn wraps an established connection (e.g. one side of net.Pipe in
// tests).
func NewConn(c net.Conn) *Conn {
	return &Conn{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip sends a command frame and reads the response, converting
// RespError into a Go error.
func (c *Conn) roundTrip(f wire.Frame) (wire.Frame, error) {
	if err := wire.WriteFrame(c.w, f); err != nil {
		return wire.Frame{}, err
	}
	if err := c.w.Flush(); err != nil {
		return wire.Frame{}, fmt.Errorf("client: flushing: %w", err)
	}
	resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return wire.Frame{}, err
	}
	if resp.Type == wire.RespError {
		r := wire.NewBuffer(resp.Payload)
		msg, merr := r.String()
		if merr != nil {
			msg = "malformed error response"
		}
		return wire.Frame{}, fmt.Errorf("client: server error: %s", msg)
	}
	return resp, nil
}

// Store uploads an encrypted table under the given name.
func (c *Conn) Store(name string, t *ph.EncryptedTable) error {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeTable(payload, t)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdStore, Payload: payload})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to store", resp.Type)
	}
	return nil
}

// Insert appends encrypted tuples to a stored table.
func (c *Conn) Insert(name string, tuples []ph.EncryptedTuple) error {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(tuples)))
	for _, tp := range tuples {
		payload = wire.EncodeTuple(payload, tp)
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdInsert, Payload: payload})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to insert", resp.Type)
	}
	return nil
}

// Query evaluates an encrypted query server-side.
func (c *Conn) Query(name string, q *ph.EncryptedQuery) (*ph.Result, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.EncodeQuery(payload, q)
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQuery, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResult {
		return nil, fmt.Errorf("client: unexpected response %#x to query", resp.Type)
	}
	return wire.DecodeResult(wire.NewBuffer(resp.Payload))
}

// QueryBatch evaluates several encrypted queries against one table in a
// single round trip, in order.
func (c *Conn) QueryBatch(name string, qs []*ph.EncryptedQuery) ([]*ph.Result, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(qs)))
	for _, q := range qs {
		payload = wire.EncodeQuery(payload, q)
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdQueryBatch, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespResults {
		return nil, fmt.Errorf("client: unexpected response %#x to query batch", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	n, err := r.U32()
	if err != nil {
		return nil, err
	}
	if int(n) != len(qs) {
		return nil, fmt.Errorf("client: batch returned %d results for %d queries", n, len(qs))
	}
	out := make([]*ph.Result, n)
	for i := range out {
		if out[i], err = wire.DecodeResult(r); err != nil {
			return nil, fmt.Errorf("client: batch result %d: %w", i, err)
		}
	}
	return out, nil
}

// FetchAll downloads a complete encrypted table.
func (c *Conn) FetchAll(name string) (*ph.EncryptedTable, error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdFetchAll, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespTable {
		return nil, fmt.Errorf("client: unexpected response %#x to fetch", resp.Type)
	}
	return wire.DecodeTable(wire.NewBuffer(resp.Payload))
}

// Drop removes a stored table.
func (c *Conn) Drop(name string) error {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdDrop, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return err
	}
	if resp.Type != wire.RespOK {
		return fmt.Errorf("client: unexpected response %#x to drop", resp.Type)
	}
	return nil
}

// List enumerates stored tables.
func (c *Conn) List() ([]wire.TableInfo, error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdList})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespList {
		return nil, fmt.Errorf("client: unexpected response %#x to list", resp.Type)
	}
	return wire.DecodeList(wire.NewBuffer(resp.Payload))
}

// Root fetches the server's authenticated-index root and tuple count for a
// table (extension).
func (c *Conn) Root(name string) (root []byte, tuples int, err error) {
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdRoot, Payload: wire.AppendString(nil, name)})
	if err != nil {
		return nil, 0, err
	}
	if resp.Type != wire.RespRoot {
		return nil, 0, fmt.Errorf("client: unexpected response %#x to root", resp.Type)
	}
	r := wire.NewBuffer(resp.Payload)
	root, err = r.Bytes()
	if err != nil {
		return nil, 0, err
	}
	n, err := r.U32()
	if err != nil {
		return nil, 0, err
	}
	return root, int(n), nil
}

// Prove fetches inclusion proofs for result positions (extension).
func (c *Conn) Prove(name string, positions []int) ([]authindex.Proof, error) {
	payload := wire.AppendString(nil, name)
	payload = wire.AppendU32(payload, uint32(len(positions)))
	for _, p := range positions {
		payload = wire.AppendU32(payload, uint32(p))
	}
	resp, err := c.roundTrip(wire.Frame{Type: wire.CmdProve, Payload: payload})
	if err != nil {
		return nil, err
	}
	if resp.Type != wire.RespProofs {
		return nil, fmt.Errorf("client: unexpected response %#x to prove", resp.Type)
	}
	return authindex.DecodeProofs(wire.NewBuffer(resp.Payload))
}

// DB is the high-level secure-outsourcing client: a scheme instance (keys
// stay here) bound to a connection and a remote table name.
type DB struct {
	conn   *Conn
	scheme ph.Scheme
	table  string

	// root pins the authenticated-index root after CreateTable /
	// Verify; nil disables verification.
	root       []byte
	rootTuples int
}

// NewDB binds a scheme to a connection and remote table name.
func NewDB(conn *Conn, scheme ph.Scheme, table string) *DB {
	return &DB{conn: conn, scheme: scheme, table: table}
}

// Scheme returns the underlying privacy homomorphism.
func (db *DB) Scheme() ph.Scheme { return db.scheme }

// Root returns the currently pinned authenticated-index root and tuple
// count (nil if none is pinned). Applications persist this across restarts
// — it is the only trust anchor needed to verify future answers.
func (db *DB) Root() (root []byte, tuples int) {
	return append([]byte(nil), db.root...), db.rootTuples
}

// PinRoot installs a previously persisted root (e.g. after a client
// restart). Passing a nil root disables verification.
func (db *DB) PinRoot(root []byte, tuples int) {
	if root == nil {
		db.root, db.rootTuples = nil, 0
		return
	}
	db.root = append([]byte(nil), root...)
	db.rootTuples = tuples
}

// CreateTable encrypts and uploads the plaintext table, pinning the
// authenticated-index root of the uploaded ciphertext.
func (db *DB) CreateTable(t *relation.Table) error {
	ct, err := db.scheme.EncryptTable(t)
	if err != nil {
		return err
	}
	if err := db.conn.Store(db.table, ct); err != nil {
		return err
	}
	tree := authindex.Build(ct)
	db.root = tree.Root()
	db.rootTuples = len(ct.Tuples)
	return nil
}

// encryptTuples builds a single-use table from the plaintext tuples and
// encrypts it under the DB's scheme.
func (db *DB) encryptTuples(tuples []relation.Tuple) (*ph.EncryptedTable, error) {
	t := relation.NewTable(db.scheme.Schema())
	for _, tp := range tuples {
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	return db.scheme.EncryptTable(t)
}

// refreshRoot re-pins the authenticated-index root from a full fetch if
// one is pinned; a no-op otherwise. (An optimisation would maintain the
// root incrementally; kept simple here.)
func (db *DB) refreshRoot() error {
	if db.root == nil {
		return nil
	}
	full, err := db.conn.FetchAll(db.table)
	if err != nil {
		return err
	}
	tree := authindex.Build(full)
	db.root = tree.Root()
	db.rootTuples = len(full.Tuples)
	return nil
}

// Insert encrypts and appends plaintext tuples. Appending changes the
// table, so the pinned root is refreshed from a full fetch.
func (db *DB) Insert(tuples ...relation.Tuple) error {
	ct, err := db.encryptTuples(tuples)
	if err != nil {
		return err
	}
	if err := db.conn.Insert(db.table, ct.Tuples); err != nil {
		return err
	}
	return db.refreshRoot()
}

// InsertBatch encrypts the tuples once and appends them to the remote
// table in chunks of chunk tuples, fanned out over workers parallel
// connections opened with dial. The concurrent CmdInsert frames land in
// the server's group-commit write path, so the whole batch shares
// fsyncs instead of paying one per chunk; every chunk is durably
// acknowledged when InsertBatch returns (under the server's sync
// policy). Chunks from different workers interleave, so the server-side
// tuple order within the batch is unspecified — exact selects don't
// care, and the pinned root (if any) is refreshed from a full fetch
// afterwards, exactly like Insert.
//
// workers <= 0 defaults to 4; chunk <= 0 defaults to 256. A nil dial
// falls back to a serial Insert over the DB's own connection.
func (db *DB) InsertBatch(dial func() (*Conn, error), workers, chunk int, tuples ...relation.Tuple) error {
	if dial == nil {
		return db.Insert(tuples...)
	}
	if workers <= 0 {
		workers = 4
	}
	if chunk <= 0 {
		chunk = 256
	}
	ct, err := db.encryptTuples(tuples)
	if err != nil {
		return err
	}
	var chunks [][]ph.EncryptedTuple
	for off := 0; off < len(ct.Tuples); off += chunk {
		end := min(off+chunk, len(ct.Tuples))
		chunks = append(chunks, ct.Tuples[off:end])
	}
	if len(chunks) == 0 {
		return nil
	}
	if w := len(chunks); w < workers {
		workers = w
	}
	work := make(chan []ph.EncryptedTuple)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := dial()
			if err != nil {
				errs[w] = fmt.Errorf("client: batch insert worker %d: %w", w, err)
				// Keep draining so the feeder never blocks on a dead worker.
				for range work {
				}
				return
			}
			defer conn.Close()
			for batch := range work {
				if err := conn.Insert(db.table, batch); err != nil {
					errs[w] = fmt.Errorf("client: batch insert worker %d: %w", w, err)
					for range work {
					}
					return
				}
			}
		}(w)
	}
	for _, c := range chunks {
		work <- c
	}
	close(work)
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	// Refresh the pinned root even on partial failure: chunks from the
	// surviving workers have already landed, so leaving the old root
	// pinned would make every later verified select fail as if the
	// server had tampered.
	if err := db.refreshRoot(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Select runs one exact select end to end: encrypt the query, evaluate it
// at the server, decrypt, filter false positives. If a root is pinned, each
// returned tuple's inclusion proof is verified first (extension).
func (db *DB) Select(q relation.Eq) (*relation.Table, error) {
	eq, err := db.scheme.EncryptQuery(q)
	if err != nil {
		return nil, err
	}
	res, err := db.conn.Query(db.table, eq)
	if err != nil {
		return nil, err
	}
	if db.root != nil {
		if err := db.verifyResult(res); err != nil {
			return nil, err
		}
	}
	return db.scheme.DecryptResult(q, res)
}

// SelectMany runs several exact selects in one server round trip and
// returns the decrypted, filtered result per query (order preserved).
// Verification against the pinned root applies to each result.
func (db *DB) SelectMany(qs []relation.Eq) ([]*relation.Table, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	eqs := make([]*ph.EncryptedQuery, len(qs))
	for i, q := range qs {
		eq, err := db.scheme.EncryptQuery(q)
		if err != nil {
			return nil, err
		}
		eqs[i] = eq
	}
	results, err := db.conn.QueryBatch(db.table, eqs)
	if err != nil {
		return nil, err
	}
	out := make([]*relation.Table, len(results))
	for i, res := range results {
		if db.root != nil {
			if err := db.verifyResult(res); err != nil {
				return nil, err
			}
		}
		if out[i], err = db.scheme.DecryptResult(qs[i], res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// verifyResult checks inclusion proofs for every returned tuple against the
// pinned root.
func (db *DB) verifyResult(res *ph.Result) error {
	if len(res.Positions) == 0 {
		return nil
	}
	proofs, err := db.conn.Prove(db.table, res.Positions)
	if err != nil {
		return err
	}
	if len(proofs) != len(res.Tuples) {
		return fmt.Errorf("client: %d proofs for %d result tuples", len(proofs), len(res.Tuples))
	}
	for i, p := range proofs {
		if p.Position != res.Positions[i] {
			return fmt.Errorf("client: proof %d speaks about position %d, want %d", i, p.Position, res.Positions[i])
		}
		if err := authindex.Verify(db.root, db.rootTuples, res.Tuples[i], p); err != nil {
			return fmt.Errorf("client: result tuple %d failed verification: %w", i, err)
		}
	}
	return nil
}

// SelectAll downloads and decrypts the whole table.
func (db *DB) SelectAll() (*relation.Table, error) {
	ct, err := db.conn.FetchAll(db.table)
	if err != nil {
		return nil, err
	}
	return db.scheme.DecryptTable(ct)
}

// Query executes a mini-SQL statement: single equalities run as one
// homomorphic select; conjunctions intersect per-equality results
// client-side; an absent WHERE clause falls back to a full download;
// projections apply after decryption.
func (db *DB) Query(sql string) (*relation.Table, error) {
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	if q.Table != db.scheme.Schema().Name && q.Table != db.table {
		return nil, fmt.Errorf("client: query addresses table %q, this client serves %q (schema %q)",
			q.Table, db.table, db.scheme.Schema().Name)
	}
	var out *relation.Table
	switch len(q.Where) {
	case 0:
		out, err = db.SelectAll()
		if err != nil {
			return nil, err
		}
	default:
		// All conjuncts travel in one batched round trip; the
		// intersection happens client-side.
		eqs := make([]relation.Eq, len(q.Where))
		for i, cond := range q.Where {
			eq, err := cond.Bind(db.scheme.Schema())
			if err != nil {
				return nil, err
			}
			eqs[i] = eq
		}
		parts, err := db.SelectMany(eqs)
		if err != nil {
			return nil, err
		}
		out = parts[0]
		for _, part := range parts[1:] {
			out, err = relation.Intersect(out, part)
			if err != nil {
				return nil, err
			}
		}
	}
	if q.Projection != nil {
		return relation.Project(out, q.Projection...)
	}
	return out, nil
}
