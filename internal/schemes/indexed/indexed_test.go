package indexed

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// constLabeler labels every value with its encoded bytes — transparent,
// but enough to exercise the framework mechanics in isolation.
type constLabeler struct{}

func (constLabeler) Label(colIdx int, col relation.Column, v relation.Value) ([]byte, error) {
	return []byte(v.Encode()), nil
}

func testSchema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "a", Type: relation.TypeString, Width: 4},
		relation.Column{Name: "n", Type: relation.TypeInt, Width: 3},
	)
}

func newTestScheme(t *testing.T) *Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New("indexed-test", key, testSchema(), constLabeler{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func init() {
	ph.RegisterEvaluator("indexed-test", Evaluate)
}

func TestEvaluateMatchesLabels(t *testing.T) {
	s := newTestScheme(t)
	tab := relation.NewTable(testSchema())
	tab.MustInsert(relation.String("x"), relation.Int(1))
	tab.MustInsert(relation.String("y"), relation.Int(2))
	tab.MustInsert(relation.String("x"), relation.Int(3))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	q := relation.Eq{Column: "a", Value: relation.String("x")}
	eq, err := s.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 2 {
		t.Fatalf("matched %d tuples, want 2", len(res.Positions))
	}
	out, err := s.DecryptResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("decrypted %d tuples, want 2", out.Len())
	}
}

func TestEvaluateRejectsShortToken(t *testing.T) {
	s := newTestScheme(t)
	tab := relation.NewTable(testSchema())
	tab.MustInsert(relation.String("x"), relation.Int(1))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(ct, &ph.EncryptedQuery{SchemeID: "indexed-test", Token: []byte{1}}); err == nil {
		t.Fatal("1-byte token accepted")
	}
}

func TestEvaluateRejectsColumnOutOfRange(t *testing.T) {
	s := newTestScheme(t)
	tab := relation.NewTable(testSchema())
	tab.MustInsert(relation.String("x"), relation.Int(1))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Column index 9 does not exist.
	token := []byte{0, 9, 'x'}
	if _, err := Evaluate(ct, &ph.EncryptedQuery{SchemeID: "indexed-test", Token: token}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestDecryptRejectsTamperedBlob(t *testing.T) {
	s := newTestScheme(t)
	tab := relation.NewTable(testSchema())
	tab.MustInsert(relation.String("x"), relation.Int(1))
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	ct.Tuples[0].Blob[len(ct.Tuples[0].Blob)-1] ^= 1
	if _, err := s.DecryptTable(ct); err == nil {
		t.Fatal("tampered AEAD blob decrypted")
	}
}

func TestEmptyTableWorks(t *testing.T) {
	s := newTestScheme(t)
	tab := relation.NewTable(testSchema())
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Tuples) != 0 {
		t.Fatalf("empty table produced %d ciphertext tuples", len(ct.Tuples))
	}
	pt, err := s.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 0 {
		t.Fatal("empty table round trip gained tuples")
	}
	eq, err := s.EncryptQuery(relation.Eq{Column: "a", Value: relation.String("x")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 0 {
		t.Fatal("query on empty table matched")
	}
}
