package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ph"
	"repro/internal/wire"
)

// tablesEqual deep-compares two encrypted tables.
func tablesEqual(a, b *ph.EncryptedTable) error {
	if a.SchemeID != b.SchemeID {
		return fmt.Errorf("scheme %q != %q", a.SchemeID, b.SchemeID)
	}
	if !bytes.Equal(a.Meta, b.Meta) {
		return fmt.Errorf("meta differs")
	}
	if len(a.Tuples) != len(b.Tuples) {
		return fmt.Errorf("%d tuples != %d tuples", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		at, bt := a.Tuples[i], b.Tuples[i]
		if !bytes.Equal(at.ID, bt.ID) || !bytes.Equal(at.Blob, bt.Blob) || len(at.Words) != len(bt.Words) {
			return fmt.Errorf("tuple %d differs", i)
		}
		for j := range at.Words {
			if !bytes.Equal(at.Words[j], bt.Words[j]) {
				return fmt.Errorf("tuple %d word %d differs", i, j)
			}
		}
	}
	return nil
}

// TestCrashRecoveryNoAckedLoss is the acceptance crash test for
// SyncAlways: every acknowledged mutation survives an abrupt process
// death. The "crash" reopens the log without ever calling Close — no
// user-space flush can save the day, so the test fails if any
// acknowledged record was still sitting in a buffer the moment the
// store was abandoned.
func TestCrashRecoveryNoAckedLoss(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenOptions(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", fakeTable(4)); err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 17; i++ {
		if err := s.Append("emp", fakeTable(1).Tuples); err != nil {
			t.Fatal(err)
		}
		acked++
	}
	// Crash: no Close, no Sync — the store object is simply abandoned.
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	got, err := s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 4+acked {
		t.Fatalf("lost acknowledged appends: replayed %d tuples, want %d", len(got.Tuples), 4+acked)
	}
}

// corruptSetup writes a small store and returns its log path plus the
// table state at the point of corruption.
func corruptSetup(t *testing.T) (string, int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", fakeTable(3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path, 5
}

// reopenExpect reopens the log and asserts the replayed table's tuple
// count and that the store accepts (and replays) a fresh append — i.e.
// corruption was truncated away, not left to brick the write path.
func reopenExpect(t *testing.T, path string, want int) {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatalf("reopen of damaged log failed: %v", err)
	}
	got, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != want {
		t.Fatalf("replayed %d tuples, want %d", len(got.Tuples), want)
	}
	if err := s.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatalf("store bricked after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != want+1 {
		t.Fatalf("append after recovery lost: %d tuples, want %d", len(got.Tuples), want+1)
	}
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestRecoveryTornV1Header: a crash that left only a fragment of a v1
// header is truncated away.
func TestRecoveryTornV1Header(t *testing.T) {
	path, want := corruptSetup(t)
	appendRaw(t, path, []byte{walMagic, opInsert, 0x00}) // 3 of 10 header bytes
	reopenExpect(t, path, want)
}

// TestRecoveryTornV1Payload: a full v1 header whose payload never made
// it is truncated away — including the corrupt-length case the old
// format misread: a plausible (< MaxFrameSize) length now fails the CRC
// or the payload read instead of silently truncating valid data.
func TestRecoveryTornV1Payload(t *testing.T) {
	path, want := corruptSetup(t)
	rec := appendWALRecord(nil, opInsert, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	appendRaw(t, path, rec[:len(rec)-3]) // lose the last 3 payload bytes
	reopenExpect(t, path, want)
}

// TestRecoveryCRCCorruptMidLog: a bit flip in a mid-log record is
// detected by the CRC; replay keeps everything before it, truncates it
// and everything after (the classic WAL stop-at-first-corruption rule),
// and the store stays writable.
func TestRecoveryCRCCorruptMidLog(t *testing.T) {
	path, want := corruptSetup(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mark := len(data) // start of the record we will corrupt
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(3).Tuples); err != nil { // to be corrupted
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(1).Tuples); err != nil { // collateral loss after the flip
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mark+walV1HdrLen+2] ^= 0x40 // flip one payload bit mid-log
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	reopenExpect(t, path, want)
}

// TestRecoveryCorruptLengthDetected is the regression for the original
// bug: a corrupted length field that stays under MaxFrameSize used to
// make replay swallow the following record's bytes as payload and
// misapply everything after. With the CRC covering the length, the
// record is rejected instead.
func TestRecoveryCorruptLengthDetected(t *testing.T) {
	path, want := corruptSetup(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mark := len(data)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mark+5] ^= 0x01 // low length byte: still plausible, now wrong
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	reopenExpect(t, path, want)
}

// TestRecoveryMixedV0V1Log: a log whose prefix predates the checksummed
// format (hand-written v0 records) replays alongside v1 records
// appended by the current code.
func TestRecoveryMixedV0V1Log(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	// Hand-write a v0 log: store("emp", 2 tuples) + insert(1 tuple).
	v0 := func(op byte, payload []byte) []byte {
		hdr := []byte{
			byte(len(payload) >> 24), byte(len(payload) >> 16),
			byte(len(payload) >> 8), byte(len(payload)), op,
		}
		return append(hdr, payload...)
	}
	base := fakeTable(2)
	storePayload := wire.AppendString(nil, "emp")
	storePayload = wire.EncodeTable(storePayload, base)
	insPayload := wire.AppendString(nil, "emp")
	insPayload = wire.AppendU32(insPayload, 1)
	insPayload = wire.EncodeTuple(insPayload, fakeTable(1).Tuples[0])
	var legacy []byte
	legacy = append(legacy, v0(opStore, storePayload)...)
	legacy = append(legacy, v0(opInsert, insPayload)...)
	if err := os.WriteFile(path, legacy, 0o600); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatalf("v0 log did not replay: %v", err)
	}
	got, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 3 {
		t.Fatalf("v0 replay produced %d tuples, want 3", len(got.Tuples))
	}
	// Appends from the current code land as v1 records after the v0 prefix.
	if err := s.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("mixed v0+v1 log did not replay: %v", err)
	}
	defer s2.Close()
	got, err = s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 5 {
		t.Fatalf("mixed replay produced %d tuples, want 5", len(got.Tuples))
	}
}

// TestConcurrentMutationsReplayConsistent is the -race ordering test for
// the narrowed locks: concurrent Append/Put/Drop across several tables,
// then a reopen, asserting the replayed catalogue is byte-identical to
// the in-memory one. This pins the invariant that same-table records
// enter the log in their in-memory application order even though no
// store-wide lock serialises the write path any more.
func TestConcurrentMutationsReplayConsistent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenOptions(path, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	tables := []string{"alpha", "beta", "gamma", "delta"}
	for _, name := range tables {
		if err := s.Put(name, fakeTable(2)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i, name := range tables {
		// One appender per table.
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				if err := s.Append(name, fakeTable(1).Tuples); err != nil {
					t.Errorf("append %s: %v", name, err)
					return
				}
			}
		}(name)
		// One replacer racing the appender on half the tables: Put
		// installs a fresh lineage mid-append-stream.
		if i%2 == 0 {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					if err := s.Put(name, fakeTable(3)); err != nil {
						t.Errorf("put %s: %v", name, err)
						return
					}
				}
			}(name)
		}
	}
	// Drop/recreate churn on its own table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 15; j++ {
			if err := s.Put("churn", fakeTable(1)); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
			if err := s.Drop("churn"); err != nil {
				t.Errorf("churn drop: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Snapshot in-memory state, close, replay, compare byte-for-byte.
	want := map[string]*ph.EncryptedTable{}
	for _, info := range s.List() {
		tab, err := s.Get(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		want[info.Name] = tab
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	infos := s2.List()
	if len(infos) != len(want) {
		t.Fatalf("replayed %d tables, want %d (%v)", len(infos), len(want), infos)
	}
	for name, w := range want {
		got, err := s2.Get(name)
		if err != nil {
			t.Fatalf("replayed store lost table %q: %v", name, err)
		}
		if err := tablesEqual(got, w); err != nil {
			t.Errorf("table %q diverges after replay: %v", name, err)
		}
	}
}

// TestAppendDistinctTablesNotSerialized pins the lock narrowing: an
// append stalled on one table's lock must not block appends to another
// table. Under the old store-wide mutex the stalled append would have
// held (or queued behind) s.mu and wedged the whole write path.
func TestAppendDistinctTablesNotSerialized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("hot", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("cold", fakeTable(1)); err != nil {
		t.Fatal(err)
	}

	// Stall table "hot": hold its write lock, then start an append that
	// must queue behind it.
	s.mu.RLock()
	hot := s.tables["hot"]
	s.mu.RUnlock()
	hot.mu.Lock()
	hotDone := make(chan error, 1)
	go func() { hotDone <- s.Append("hot", fakeTable(1).Tuples) }()

	// Appends to the other table must complete while "hot" is wedged.
	coldDone := make(chan error, 1)
	go func() { coldDone <- s.Append("cold", fakeTable(1).Tuples) }()
	select {
	case err := <-coldDone:
		if err != nil {
			t.Fatalf("append to cold table: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append to a distinct table serialized behind a stalled append")
	}
	select {
	case err := <-hotDone:
		t.Fatalf("append to hot table finished while its lock was held (%v)", err)
	default:
	}
	hot.mu.Unlock()
	if err := <-hotDone; err != nil {
		t.Fatalf("stalled append failed after unblock: %v", err)
	}
}

// TestCloseIsDurableUnderNever: acknowledged-but-unsynced writes under
// SyncNever survive a clean Close (which must sync), pinned by the
// LogStats sync counter.
func TestCloseIsDurableUnderNever(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := OpenOptions(path, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	if st := s.LogStats(); st.Syncs != 0 || st.Records != 1 {
		t.Fatalf("unexpected log stats before close: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.LogStats(); st.Syncs != 1 {
		t.Fatalf("Close did not sync: %+v", st)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("emp"); err != nil {
		t.Fatalf("clean shutdown lost data under SyncNever: %v", err)
	}
}

// TestGroupCommitSharesFsyncsOnDisk is the on-disk counterpart of the
// fake-file sharing test: 8 writers, one table each, SyncAlways; the
// LogStats fsync count must come in well under one per record.
func TestGroupCommitSharesFsyncsOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, perWriter = 8, 15
	for g := 0; g < writers; g++ {
		if err := s.Put(fmt.Sprintf("t%d", g), fakeTable(1)); err != nil {
			t.Fatal(err)
		}
	}
	base := s.LogStats()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g)
			for j := 0; j < perWriter; j++ {
				if err := s.Append(name, fakeTable(1).Tuples); err != nil {
					t.Errorf("append %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := s.LogStats()
	records := st.Records - base.Records
	syncs := st.Syncs - base.Syncs
	if records != writers*perWriter {
		t.Fatalf("recorded %d records, want %d", records, writers*perWriter)
	}
	if syncs == 0 {
		t.Fatal("SyncAlways issued no fsyncs")
	}
	t.Logf("group commit: %d records over %d fsyncs (%.1f records/fsync)",
		records, syncs, float64(records)/float64(syncs))
}
