// Package cryptorand forbids math/rand where unpredictability is a
// security property. The scheme's guarantees (SWP encryption, trapdoor
// generation, Merkle salting) assume randomness an adversary cannot
// reconstruct; math/rand and math/rand/v2 are seeded PRNGs whose whole
// output is recoverable from a small amount of observed state.
//
// Enforcement has two tiers:
//
//   - In the cryptographic packages (crypto, swp, schemes, authindex)
//     importing math/rand at all is a finding: nothing in those
//     packages has a legitimate use for predictable randomness.
//   - In internal/client, math/rand is legitimate for jitter and
//     backoff, so only uses inside key-handling functions — names
//     matching key/secret/trapdoor/nonce/salt — are flagged.
package cryptorand

import (
	"go/ast"
	"regexp"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the cryptorand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cryptorand",
	Doc: "math/rand is forbidden in cryptographic packages and in key-handling " +
		"client code; use crypto/rand",
	Match: func(path string) bool {
		return analysis.PathHasAnySegment(path, "crypto", "swp", "schemes", "authindex", "client")
	},
	Run: run,
}

// keyish matches function names that handle key material.
var keyish = regexp.MustCompile(`(?i)key|secret|trapdoor|nonce|salt`)

func run(pass *analysis.Pass) error {
	strict := analysis.PathHasAnySegment(pass.Pkg.Path(), "crypto", "swp", "schemes", "authindex")
	for _, f := range pass.Files {
		if strict {
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && isMathRand(path) {
					pass.Reportf(imp.Pos(),
						"%s is a seeded PRNG and has no place in a cryptographic package; use crypto/rand", path)
				}
			}
			continue
		}
		// Client tier: flag math/rand uses inside key-handling functions.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !keyish.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				// A package qualifier resolves to a PkgName declared in
				// THIS package, so only the referenced member — whose
				// Pkg() really is math/rand — reaches the report.
				obj := pass.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil || !isMathRand(obj.Pkg().Path()) {
					return true
				}
				pass.Reportf(id.Pos(),
					"%s in key-handling function %s: key material needs crypto/rand", obj.Pkg().Path(), fd.Name.Name)
				return true
			})
		}
	}
	return nil
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}
