// Package analysistest runs an analyzer over fixture packages and
// checks its findings against expectations written in the fixtures
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the repo's stdlib-only framework.
//
// A fixture package lives in testdata/src/<name>/ next to the analyzer
// and is self-contained (standard-library imports only). A line that
// must be flagged carries a want comment whose argument is a regular
// expression matched against the finding message:
//
//	t.Words = make([][]byte, n) // want `wire-decoded count`
//
// Several comments on one line demand several findings. Lines without a
// want comment must produce no finding. Suppression fixtures exercise
// the driver's //phlint:ignore handling the same way: a suppressed line
// carries no want, an unused suppression line wants the driver's
// "unused" finding.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe matches one expectation: want `re` or want "re", repeated.
var wantRe = regexp.MustCompile("// *want ((?:(?:`[^`]*`|\"[^\"]*\") *)+)")

var argRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run analyzes each fixture package under testdata/src and reports any
// mismatch between the analyzer's surviving findings (plus driver
// findings) and the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		dir := filepath.Join(testdata, "src", fix)
		t.Run(fix, func(t *testing.T) {
			t.Helper()
			runOne(t, dir, fix, a)
		})
	}
}

func runOne(t *testing.T, dir, path string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	imports, err := fixtureImports(filenames)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportsFor(imports...)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := load.ExportImporter(fset, func(p string) (string, bool) {
		f, ok := exports[p]
		return f, ok
	})
	target, err := load.Check(path, fset, filenames, imp)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}

	findings, err := analysis.Run(target, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, filenames)
	for _, f := range findings {
		key := lineKey{f.Position.Filename, f.Position.Line}
		if matchWant(wants[key], f.Message) {
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched want %q", key.file, key.line, w.re.String())
			}
		}
	}
}

// fixtureImports collects the union of import paths across the files.
func fixtureImports(filenames []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	return out, nil
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans fixture files for want comments.
func collectWants(t *testing.T, filenames []string) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, name := range filenames {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range argRe.FindAllString(m[1], -1) {
				pat := arg[1 : len(arg)-1]
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				key := lineKey{name, i + 1}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}

// matchWant consumes the first unmatched want whose pattern matches.
func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fprint is a debugging helper: it renders findings one per line.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
