package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAndTest(t *testing.T) {
	f, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	positions := []uint32{0, 1, 7, 8, 63, 99}
	for _, p := range positions {
		f.Set(p)
	}
	for _, p := range positions {
		if !f.Test(p) {
			t.Errorf("bit %d not set", p)
		}
	}
	for _, p := range []uint32{2, 50, 98} {
		if f.Test(p) {
			t.Errorf("bit %d unexpectedly set", p)
		}
	}
	if f.PopCount() != len(positions) {
		t.Fatalf("popcount %d, want %d", f.PopCount(), len(positions))
	}
}

func TestModuloWrap(t *testing.T) {
	f, _ := New(10)
	f.Set(12) // == bit 2
	if !f.Test(2) || !f.Test(12) || !f.Test(22) {
		t.Fatal("positions must wrap mod m")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero-bit filter created")
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	f, _ := New(33)
	f.Set(32)
	g, err := FromBytes(f.Bytes(), 33)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Test(32) || g.Test(0) {
		t.Fatal("deserialised filter differs")
	}
	if _, err := FromBytes(f.Bytes(), 64); err == nil {
		t.Fatal("mismatched bit count accepted")
	}
	if _, err := FromBytes(nil, 8); err == nil {
		t.Fatal("empty bytes accepted for 8-bit filter")
	}
}

func TestOptimalParams(t *testing.T) {
	m, k, err := OptimalParams(3, 1.0/65536)
	if err != nil {
		t.Fatal(err)
	}
	// Textbook: m ≈ 69 bits, k ≈ 16 for n=3, p=2^-16.
	if m < 60 || m > 80 {
		t.Fatalf("m = %d, expected ≈ 69", m)
	}
	if k < 12 || k > 20 {
		t.Fatalf("k = %d, expected ≈ 16", k)
	}
	if _, _, err := OptimalParams(0, 0.01); err == nil {
		t.Fatal("zero items accepted")
	}
	if _, _, err := OptimalParams(3, 1.5); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	// Optimally dimensioned filter must hit its target rate within 2x.
	target := 0.01
	m, k, err := OptimalParams(100, target)
	if err != nil {
		t.Fatal(err)
	}
	got := FalsePositiveRate(m, k, 100)
	if got > 2*target {
		t.Fatalf("predicted rate %v far above target %v", got, target)
	}
	if FalsePositiveRate(0, 1, 1) != 1 || FalsePositiveRate(8, 0, 1) != 1 {
		t.Fatal("degenerate parameters should predict rate 1")
	}
}

func TestEmpiricalFalsePositiveRate(t *testing.T) {
	// Insert 50 random positions per trial, probe absent ones; the
	// empirical rate must be within 3x of the formula.
	const n = 50
	m, k, err := OptimalParams(n, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	probes, hits := 0, 0
	for trial := 0; trial < 200; trial++ {
		f, _ := New(m)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				f.Set(rng.Uint32())
			}
		}
		// Probe 20 random "absent" items.
		for p := 0; p < 20; p++ {
			all := true
			for j := 0; j < k; j++ {
				if !f.Test(rng.Uint32()) {
					all = false
					break
				}
			}
			probes++
			if all {
				hits++
			}
		}
	}
	rate := float64(hits) / float64(probes)
	want := FalsePositiveRate(m, k, n)
	if rate > 3*want+0.01 {
		t.Fatalf("empirical FP rate %v, formula %v", rate, want)
	}
}

func TestSetTestProperty(t *testing.T) {
	f, _ := New(512)
	check := func(pos uint32) bool {
		f.Set(pos)
		return f.Test(pos)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
