// Package storage implements Eve's ciphertext store: a concurrency-safe
// in-memory catalogue of encrypted tables with durability through a
// write-ahead log. The server never sees plaintext; everything stored
// here is exactly what the wire protocol delivered.
//
// Durability model: each mutation (store, insert, drop) is framed as a
// checksummed log record (format v1: magic, op, length, CRC32C; legacy
// v0 records without a checksum replay too) and appended through a
// dedicated log writer before it is applied in memory and acknowledged.
// The sync policy decides what "acknowledged" promises: under SyncAlways
// (the default) the record is fsynced first, with concurrent writers
// sharing one fsync through group commit; SyncInterval fsyncs in the
// background every interval; SyncNever leaves flushing to the OS. Close
// always syncs, so a clean shutdown is durable under every policy. On
// open the log is replayed: a torn trailing record (crash mid-append)
// and anything after a corrupt record (CRC mismatch) is truncated away,
// so replay never silently misapplies bytes the CRC disowns.
//
// Degradation under write failure (disk full, I/O error, failed fsync):
// the log writer's first failure is sticky. The failing record is
// truncated back out of the file so the log never ends in bytes that
// were acknowledged to nobody, the error is returned to the caller, and
// every later mutation is refused with the same error BEFORE touching
// memory — the store degrades to a read-only catalogue rather than
// letting memory and log fork. One asymmetry is inherent to group
// commit: the mutation that first hits a failing fsync has already
// applied in memory when the durability wait reports the error, so that
// single write is in-doubt (visible to reads, absent from the log) until
// the store is reopened; reopening replays only what the log's
// checksums vouch for. Recovery from a cleared condition (space freed)
// is by reopening the store.
//
// Locking model: the store-level RWMutex guards only the catalogue map
// and the cache pointer; each table carries its own RWMutex guarding its
// tuple data, and the log writer serialises record framing under its own
// internal mutex. A mutation stages its log record while holding the
// lock that orders it — the table lock for Append, the store lock (plus
// the outgoing table's lock) for Put and Drop — and then waits for
// durability with no locks held. Mutations of distinct tables therefore
// proceed in parallel, paying only for the shared group commit, and a
// query never waits behind another table's disk I/O. Because the record
// for every mutation of a given table is framed under that table's
// ordering lock, the log order of same-table records always matches the
// in-memory application order, which is what makes replay reproduce the
// in-memory state exactly (records of different tables commute). Lock
// order is strictly store, then table, then log writer; nothing may
// take an earlier lock while holding a later one.
//
// Versioning and the result cache: every table carries a monotonic
// version drawn from a store-wide clock, bumped on Put, Append and Drop,
// plus the lineage base — the version at which the current table object
// was installed. Query consults a bounded LRU result cache
// (internal/cache) keyed by (table, trapdoor digest) under the table's
// read lock: a current entry answers without scanning; an entry that
// covers a prefix (the table has only been appended to since) triggers a
// delta scan of just the appended tail; anything else is a miss and a
// full scan. Destructive mutations invalidate the table's entries, and
// the lineage base rejects entries a racing in-flight query stored
// against a replaced snapshot. Caching leaks nothing: positions returned
// per trapdoor are exactly the access pattern every query already reveals
// to the server by construction.
//
// Conjunctive queries: QueryConj (and its verified and explain
// variants) plans a conjunction through internal/query under the same
// single read-lock acquisition — per-conjunct cache state and the
// entry's selectivity sketch (stats.QuerySketch, fed by every scan)
// order the conjuncts, at most one full-width pass runs, and later
// conjuncts only test surviving positions via ph.ApplyOn.
// Fresh full-table position sets are written back to the cache per
// conjunct, so a repeated conjunct hits even inside a new combination.
//
// Authenticated index: each table entry owns a version-stamped Merkle
// tree (internal/authindex) over its tuples, built lazily on the first
// Root/Prove/QueryVerified and from then on extended incrementally —
// Append hashes just the new tuples and repairs the tree in O(k + log n)
// under the table's write lock (only if the tree was ever materialised;
// unauthenticated workloads pay nothing). Readers catch the tree up
// under the table's read lock (serialised on a small internal mutex), so
// the tree served always covers exactly the tuples served, and
// QueryVerified cuts (result, proofs, root, count, version) from one
// read-locked snapshot — mutually consistent by construction. Put and
// Drop retire the tree with the entry they retire; Compact leaves tuples
// (and therefore trees) untouched.
//
// Log shipping: the WAL doubles as the replication stream. ReadLog
// serves records to followers from an (epoch, seq) cursor — epoch names
// the current log file via a fsynced sidecar, rotated by Compact so a
// follower whose cursor predates the rotation is told to re-bootstrap
// rather than silently diverge — and ApplyShipped replays shipped
// records through the normal Put/Append/Drop, producing bit-identical
// tuples and therefore the primary's Merkle roots. A follower whose
// cursor no longer resolves bootstraps from a checksummed snapshot of
// the live state (snapshot.go) instead of replaying from record 0, and
// a durable follower persists its shipping base in a sidecar so it
// resumes tailing across its own restarts. See ship.go, snapshot.go and
// internal/replica for the follower side.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/authindex"
	"repro/internal/cache"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/scanshare"
	"repro/internal/stats"
	"repro/internal/wire"
)

// log record op codes.
const (
	opStore  byte = 0x01
	opInsert byte = 0x02
	opDrop   byte = 0x03
)

// tableEntry is one catalogued table with its own reader/writer lock.
type tableEntry struct {
	mu sync.RWMutex
	t  *ph.EncryptedTable
	// tree is the table's authenticated index (Merkle tree over the
	// tuples), built lazily on the first Root/Prove/QueryVerified and
	// extended incrementally on Append. treeN is the tuple count the tree
	// covers; treeMu serialises catch-up between concurrent readers.
	// Invariant: the tree is only ever a prefix view (treeN <=
	// len(t.Tuples)) of the entry it lives in, so whoever brings it to
	// the locked tuple count serves a tree consistent with the tuples
	// served. Destructive mutations never touch it: Put and Drop install
	// or unlink whole entries, so a replaced table's tree dies with its
	// entry.
	treeMu sync.Mutex
	tree   *authindex.Tree
	treeN  int
	// base is the store-clock version at which this table object was
	// installed (Put or replayed store record). Cache entries from before
	// base belong to a replaced snapshot and are unusable.
	base uint64
	// version is bumped from the store clock on every mutation touching
	// this table. Between base and version the only mutations are appends
	// (destructive ones install a fresh entry), which is what makes cached
	// prefixes delta-scannable.
	version uint64
	// stale marks an entry that has been replaced (Put) or removed
	// (Drop) from the catalogue. An Append that looked the entry up
	// before the replacement re-reads the catalogue instead of mutating
	// — and logging against — a superseded object, which keeps the log
	// order of same-table records identical to their in-memory order.
	stale bool
	// sketch is the conjunctive planner's per-table selectivity sketch,
	// fed by every scan this entry serves. It has its own internal
	// mutex, so observing under the table's read lock is safe.
	sketch *stats.QuerySketch
}

// newTableEntry creates a catalogued entry for a freshly installed table
// at lineage base/version v.
func newTableEntry(t *ph.EncryptedTable, v uint64) *tableEntry {
	return &tableEntry{t: t, base: v, version: v, sketch: stats.NewQuerySketch()}
}

// authTree returns the entry's authenticated index, built or extended to
// cover exactly the current tuples. Callers must hold e.mu (read or
// write). Concurrent readers serialise the catch-up on treeMu; once the
// tree covers the locked tuple count it is safe to read without treeMu
// for as long as e.mu is held, because every tree mutation happens either
// under e.mu's write lock or under treeMu by a reader catching up to this
// same length (a no-op once reached).
func (e *tableEntry) authTree() *authindex.Tree {
	e.treeMu.Lock()
	defer e.treeMu.Unlock()
	if e.tree == nil {
		e.tree = authindex.Build(e.t)
		e.treeN = len(e.t.Tuples)
		return e.tree
	}
	e.catchUpTree()
	return e.tree
}

// catchUpTree extends a materialised tree over any appended tail. Callers
// hold treeMu and e.mu (read suffices: the tuple slice cannot change).
func (e *tableEntry) catchUpTree() {
	if n := len(e.t.Tuples); e.treeN < n {
		leaves := make([][]byte, 0, n-e.treeN)
		for _, tp := range e.t.Tuples[e.treeN:] {
			leaves = append(leaves, authindex.LeafHash(tp))
		}
		e.tree.Extend(leaves)
		e.treeN = n
	}
}

// Store is the server-side catalogue of encrypted tables.
type Store struct {
	mu     sync.RWMutex // guards tables (the map itself), cache ptr and epoch
	tables map[string]*tableEntry
	wal    *walWriter // immutable after Open; nil for pure in-memory stores
	path   string
	clock  atomic.Uint64 // monotonic version source for all tables
	cache  *cache.Cache  // nil disables result caching
	// share coalesces concurrent cold full-table scans (layer 14): a
	// cache-miss query rides the table's in-flight ψ pass instead of
	// starting its own. nil disables sharing (every query scans alone).
	share *scanshare.Sharer

	// epoch identifies the current log file's record sequence space for
	// log shipping (see ship.go): loaded from the sidecar on open, rotated
	// by Compact under the exclusive store lock, 0 for in-memory stores.
	epoch uint64
	// shipMu guards the ReadLog cursor→byte-offset cache, which lets a
	// tailing follower resume at its cursor without rescanning the file.
	shipMu    sync.Mutex
	shipEpoch uint64
	shipSeq   uint64
	shipOff   int64

	// wrapLog is Options.WrapLog, retained so every replacement log
	// handle installed by Compact, Reset or InstallSnapshot passes
	// through the same fault seam as the handle opened at OpenOptions.
	wrapLog func(LogFile) LogFile

	// base is a durable follower's persisted shipping base (see
	// ship.go): the primary-side cursor this store's local log was
	// seeded from, used to recompute the resume cursor across restarts.
	// Guarded by mu; baseValid is false when no trustworthy sidecar was
	// found.
	base      shipBase
	baseValid bool

	// snapMu guards the snapshot serving cache (see snapshot.go): one
	// encoded snapshot is retained so chunked ShipSnapshot reads serve a
	// stable byte stream without re-walking the catalogue per chunk.
	// Never acquire mu or a table lock while holding snapMu.
	snapMu    sync.Mutex
	snapBuf   []byte
	snapEpoch uint64
	snapSeq   uint64
}

// NewMemory creates a volatile in-memory store with result caching
// enabled at the default size.
func NewMemory() *Store {
	return &Store{tables: make(map[string]*tableEntry), cache: cache.New(0), share: scanshare.New(0)}
}

// Open creates a durable store backed by the write-ahead log at path
// with default options (SyncAlways), replaying any existing log. Result
// caching is enabled at the default size.
func Open(path string) (*Store, error) {
	return OpenOptions(path, Options{})
}

// OpenOptions creates a durable store backed by the write-ahead log at
// path, replaying any existing log, with the given durability options.
func OpenOptions(path string, opts Options) (*Store, error) {
	switch opts.Sync {
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return nil, fmt.Errorf("storage: invalid sync policy %v", opts.Sync)
	}
	s := &Store{tables: make(map[string]*tableEntry), path: path, cache: cache.New(0), share: scanshare.New(0)}
	recs, err := s.replay(path)
	if err != nil {
		return nil, err
	}
	epoch, err := loadEpoch(path)
	if err != nil {
		return nil, err
	}
	s.epoch = epoch
	if b, ok := loadShipBase(path, epoch); ok {
		s.base, s.baseValid = b, true
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("storage: stat log %s: %w", path, err)
	}
	s.wrapLog = opts.WrapLog
	var lf LogFile = f
	if s.wrapLog != nil {
		lf = s.wrapLog(f)
	}
	s.wal = newWALWriter(lf, info.Size(), recs, opts)
	return s, nil
}

// Close syncs the log — a clean shutdown is durable even under the
// SyncInterval and SyncNever policies — and closes it. Mutating a
// closed durable store fails.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// Sync forces everything acknowledged so far onto stable storage,
// regardless of the sync policy. A no-op for in-memory stores.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.syncNow()
}

// LogStats returns the log writer's activity counters (zero for
// in-memory stores). Records counts accepted mutations; Syncs counts
// fsyncs — under group commit the latter stays well below the former.
func (s *Store) LogStats() LogStats {
	if s.wal == nil {
		return LogStats{}
	}
	return s.wal.stats()
}

// entry looks up a table's entry under the store read lock. The returned
// entry stays valid after the store lock is released: a concurrent Drop or
// Put only unlinks it from the map, and readers still holding it finish
// against the snapshot they found. The result cache and scan sharer
// pointers are read under the same lock so Query sees a consistent set.
func (s *Store) entry(name string) (*tableEntry, *cache.Cache, *scanshare.Sharer, error) {
	s.mu.RLock()
	e, ok := s.tables[name]
	c := s.cache
	sh := s.share
	s.mu.RUnlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return e, c, sh, nil
}

// SetResultCache installs (or, with nil, disables) the query result
// cache. Intended for tests and benchmarks that need the uncached path;
// stores come with a default-sized cache out of the box.
func (s *Store) SetResultCache(c *cache.Cache) {
	s.mu.Lock()
	s.cache = c
	s.mu.Unlock()
}

// SetSharer installs (or, with nil, disables) the scan-sharing layer.
// Intended for tests and benchmarks that need the per-query scan path;
// stores come with a default sharer out of the box.
func (s *Store) SetSharer(sh *scanshare.Sharer) {
	s.mu.Lock()
	s.share = sh
	s.mu.Unlock()
}

// ShareStats returns the scan sharer's counters (zero if sharing is
// disabled).
func (s *Store) ShareStats() scanshare.Stats {
	s.mu.RLock()
	sh := s.share
	s.mu.RUnlock()
	if sh == nil {
		return scanshare.Stats{}
	}
	return sh.Stats()
}

// CacheStats returns the result cache's counters (zero if caching is
// disabled).
func (s *Store) CacheStats() cache.Stats {
	s.mu.RLock()
	c := s.cache
	s.mu.RUnlock()
	if c == nil {
		return cache.Stats{}
	}
	return c.Stats()
}

// replay loads the log at path into memory. Replay stops at the first
// record that fails integrity checks — a torn header or payload (crash
// mid-append) or a v1 record whose CRC does not match its bytes — and
// truncates the log there, so nothing after a corrupt length or flipped
// byte is ever misapplied. v1 records that verify but fail to apply are
// a hard error (they indicate a format from a newer version, not
// corruption); unverifiable legacy v0 records that fail to apply are
// treated as corruption and truncated. The returned count — how many
// records survived — seeds the log-shipping sequence (a follower's cursor
// indexes records of the current file).
func (s *Store) replay(path string) (uint64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: opening log %s for replay: %w", path, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var validOffset int64
	var recs uint64
scan:
	for {
		first, err := br.ReadByte()
		if err != nil {
			break // io.EOF: clean end of log
		}
		var op byte
		var payload []byte
		var recLen int64
		if first == walMagic {
			var hdr [walV1HdrLen - 1]byte // op, len, crc
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				break // torn v1 header
			}
			n := binary.BigEndian.Uint32(hdr[1:5])
			if n > wire.MaxFrameSize {
				break // corrupt length (CRC would fail anyway)
			}
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				break // torn payload
			}
			crc := crc32.Update(0, castagnoli, hdr[:5])
			crc = crc32.Update(crc, castagnoli, payload)
			if crc != binary.BigEndian.Uint32(hdr[5:9]) {
				break // corrupt record
			}
			op = hdr[0]
			recLen = walV1HdrLen + int64(n)
			if err := s.applyRecord(op, payload); err != nil {
				return 0, fmt.Errorf("storage: replaying log %s at offset %d: %w", path, validOffset, err)
			}
		} else {
			// Legacy v0: first is the leading byte of the length.
			var rest [walV0HdrLen - 1]byte // len[1:4], op
			if _, err := io.ReadFull(br, rest[:]); err != nil {
				break // torn v0 header
			}
			n := uint32(first)<<24 | uint32(rest[0])<<16 | uint32(rest[1])<<8 | uint32(rest[2])
			if n > wire.MaxFrameSize {
				break // corrupt length
			}
			op = rest[3]
			payload = make([]byte, n)
			if _, err := io.ReadFull(br, payload); err != nil {
				break // torn payload
			}
			recLen = walV0HdrLen + int64(n)
			if err := s.applyRecord(op, payload); err != nil {
				break scan // unverifiable legacy record: treat as corruption
			}
		}
		validOffset += recLen
		recs++
	}
	// Truncate any torn or corrupt tail so the next append starts at a
	// clean boundary.
	info, err := os.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("storage: stat log %s: %w", path, err)
	}
	if info.Size() > validOffset {
		if err := os.Truncate(path, validOffset); err != nil {
			return 0, fmt.Errorf("storage: truncating torn log tail of %s: %w", path, err)
		}
	}
	return recs, nil
}

// applyRecord applies one replayed record to the in-memory state. Replay
// runs before the store is shared, so no table locks are needed.
func (s *Store) applyRecord(op byte, payload []byte) error {
	r := wire.NewBuffer(payload)
	switch op {
	case opStore:
		name, err := r.String()
		if err != nil {
			return err
		}
		t, err := wire.DecodeTable(r)
		if err != nil {
			return err
		}
		v := s.clock.Add(1)
		s.tables[name] = newTableEntry(t, v)
	case opInsert:
		name, err := r.String()
		if err != nil {
			return err
		}
		e, ok := s.tables[name]
		if !ok {
			return fmt.Errorf("storage: insert into unknown table %q", name)
		}
		n, err := r.U32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			tp, err := wire.DecodeTuple(r)
			if err != nil {
				return err
			}
			e.t.Tuples = append(e.t.Tuples, tp)
		}
		e.version = s.clock.Add(1)
	case opDrop:
		name, err := r.String()
		if err != nil {
			return err
		}
		delete(s.tables, name)
	default:
		return fmt.Errorf("storage: unknown log op %#x", op)
	}
	return nil
}

// Put stores (or replaces) the encrypted table under name. Replacement
// installs a fresh entry at a fresh lineage base and invalidates the
// table's cached results; queries still running against a replaced table
// finish on the snapshot they started with, and any result they cache
// afterwards carries a pre-replacement version the lineage check rejects.
//
// The deep copy and the record encoding run before any lock is taken;
// the store lock covers only the log staging and the catalogue install,
// and the durability wait holds no locks at all.
func (s *Store) Put(name string, t *ph.EncryptedTable) error {
	if name == "" {
		return fmt.Errorf("storage: empty table name")
	}
	clone := t.Clone()
	var payload []byte
	if s.wal != nil {
		payload = wire.AppendString(nil, name)
		payload = wire.EncodeTable(payload, t)
	}
	s.mu.Lock()
	old := s.tables[name]
	if old != nil {
		// Holding the outgoing entry's lock while staging orders this
		// record after every append already logged against it, and
		// marking it stale sends later appends to the new entry.
		old.mu.Lock()
	}
	var seq uint64
	if s.wal != nil {
		var err error
		if seq, err = s.wal.write(opStore, payload); err != nil {
			if old != nil {
				old.mu.Unlock()
			}
			s.mu.Unlock()
			return err
		}
	}
	if old != nil {
		old.stale = true
		old.mu.Unlock()
	}
	v := s.clock.Add(1)
	s.tables[name] = newTableEntry(clone, v)
	if s.cache != nil {
		s.cache.InvalidateTable(name)
	}
	s.mu.Unlock()
	if s.wal != nil {
		return s.wal.waitDurable(seq)
	}
	return nil
}

// Append adds encrypted tuples to an existing table. The tuples must
// carry the same scheme as the stored table (enforced by the caller
// protocol: they're opaque here). Only the table's own write lock is
// held across the log staging and the tuple mutation, so appends to
// distinct tables proceed in parallel — under SyncAlways they share the
// group-commit fsync, which no lock is held across.
func (s *Store) Append(name string, tuples []ph.EncryptedTuple) error {
	_, _, err := s.AppendStamped(name, tuples)
	return err
}

// AppendStamped is Append returning the write's placement: the tuple
// index the batch landed at (the table's tuple count before the append)
// and the table version the append installed. A client maintaining the
// table's authenticated root incrementally needs exactly this pair: base
// tells it where its leaves went, version stamps the snapshot.
//
// If the entry's authenticated index has been materialised, the append
// extends it in place (O(k + log n) hashes under the table's write lock)
// instead of invalidating it; a never-requested index stays unbuilt and
// costs appends nothing.
func (s *Store) AppendStamped(name string, tuples []ph.EncryptedTuple) (base int, version uint64, err error) {
	var payload []byte
	if s.wal != nil {
		payload = wire.AppendString(nil, name)
		payload = wire.AppendU32(payload, uint32(len(tuples)))
		for _, tp := range tuples {
			payload = wire.EncodeTuple(payload, tp)
		}
	}
	for {
		s.mu.RLock()
		e, ok := s.tables[name]
		s.mu.RUnlock()
		if !ok {
			return 0, 0, fmt.Errorf("storage: unknown table %q", name)
		}
		e.mu.Lock()
		if e.stale {
			// The entry was replaced or dropped between lookup and lock:
			// retry against the current catalogue state.
			e.mu.Unlock()
			continue
		}
		var seq uint64
		if s.wal != nil {
			if seq, err = s.wal.write(opInsert, payload); err != nil {
				e.mu.Unlock()
				return 0, 0, err
			}
		}
		base = len(e.t.Tuples)
		e.t.Tuples = append(e.t.Tuples, tuples...)
		version = s.clock.Add(1)
		e.version = version
		e.extendTreeLocked()
		e.mu.Unlock()
		if s.wal != nil {
			return base, version, s.wal.waitDurable(seq)
		}
		return base, version, nil
	}
}

// extendTreeLocked brings a materialised authenticated index up to date
// with a just-appended tail. Must be called with e.mu write-locked; a nil
// tree (never requested) is left unbuilt.
func (e *tableEntry) extendTreeLocked() {
	e.treeMu.Lock()
	defer e.treeMu.Unlock()
	if e.tree != nil {
		e.catchUpTree()
	}
}

// Get returns a deep copy of the named table. Only the slice header (and
// the immutable scheme/meta fields) are snapshotted under the table's
// read lock; the deep copy runs outside it, so exporting a large table no
// longer stalls writers for the whole copy. This is safe because stored
// tuples are immutable once appended: Append only grows the slice beyond
// the snapshotted length (or reallocates), Put installs a fresh entry,
// and nothing ever mutates Tuples[0:len] in place.
func (s *Store) Get(name string) (*ph.EncryptedTable, error) {
	e, _, _, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	snap := ph.EncryptedTable{SchemeID: e.t.SchemeID, Meta: e.t.Meta, Tuples: e.t.Tuples}
	e.mu.RUnlock()
	return snap.Clone(), nil
}

// Query evaluates the encrypted query against the named table via the
// key-free evaluator registry. It holds only the table's read lock for the
// duration of the evaluation, so queries on distinct tables — and multiple
// queries on the same table — run fully in parallel, and none of them
// block the catalogue.
//
// With caching enabled, the cache is consulted under that same read lock.
// A Hit answers from the cached positions without touching the tuples. A
// Delta — the table has only been appended to since the entry was stored —
// evaluates just the appended tail through the scheme's own evaluator
// (every registered evaluator is a tuple-local scan, so evaluating
// Tuples[scanned:] and offsetting the positions is exact) and merges. A
// Miss runs the full scan. Hot and delta results are written back so the
// next query starts warm.
func (s *Store) Query(name string, q *ph.EncryptedQuery) (*ph.Result, error) {
	e, c, sh, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return queryLocked(e, c, sh, name, q)
}

// queryLocked is Query's body, factored out so QueryVerified can run it
// under the same single read-lock acquisition that cuts its proofs.
// Callers hold e.mu (read suffices). Every scan it runs is fed back into
// the entry's selectivity sketch, which is how the conjunctive planner
// learns from ordinary single selects.
//
// A cache miss is a full-table scan, and full-table scans are where
// concurrent cold queries duplicate work — so the miss path goes through
// the scan-sharing layer (when installed): the query rides the table's
// in-flight ψ pass, or starts one for later arrivals to ride. The
// writeback happens here, under THIS query's read lock, with the tuple
// count and version of the snapshot the rider was admitted against —
// every rider of a pass holds its table read lock across the whole wait,
// so appends (which need the write lock) cannot move the version under a
// rider, and no writeback can be stale. Delta tail scans stay per-query:
// tails are short and sharing them would serialise on pass admission.
func queryLocked(e *tableEntry, c *cache.Cache, sh *scanshare.Sharer, name string, q *ph.EncryptedQuery) (*ph.Result, error) {
	n := len(e.t.Tuples)
	ent, outcome := cache.Entry{}, cache.Miss
	if c != nil {
		ent, outcome = c.Lookup(name, q, e.base, n)
	}
	switch outcome {
	case cache.Hit:
		return ph.SelectPositions(e.t, ent.Positions), nil
	case cache.Delta:
		tail := &ph.EncryptedTable{SchemeID: e.t.SchemeID, Meta: e.t.Meta, Tuples: e.t.Tuples[ent.Scanned:]}
		res, err := ph.Apply(tail, q)
		if err != nil {
			return nil, err
		}
		e.observeScan(q, len(res.Positions), len(tail.Tuples))
		positions := ent.Positions // Lookup returned a private copy
		for _, p := range res.Positions {
			positions = append(positions, p+ent.Scanned)
		}
		c.Store(name, q, cache.Entry{Positions: positions, Scanned: n, Version: e.version})
		return ph.SelectPositions(e.t, positions), nil
	default:
		if sh != nil {
			positions, ok, err := sh.Scan(e, e.shareSnapshot(), q)
			if err != nil {
				return nil, err
			}
			if ok {
				e.observeScan(q, len(positions), n)
				if c != nil {
					c.Store(name, q, cache.Entry{Positions: positions, Scanned: n, Version: e.version})
				}
				return ph.SelectPositions(e.t, positions), nil
			}
		}
		res, err := ph.Apply(e.t, q)
		if err != nil {
			return nil, err
		}
		e.observeScan(q, len(res.Positions), n)
		if c != nil {
			c.Store(name, q, cache.Entry{Positions: res.Positions, Scanned: n, Version: e.version})
		}
		return res, nil
	}
}

// shareSnapshot cuts the entry's immutable scan view for the sharing
// layer. Callers hold e.mu (read suffices); the slice header stays valid
// after release because stored tuples are immutable once appended.
func (e *tableEntry) shareSnapshot() scanshare.Snapshot {
	return scanshare.Snapshot{SchemeID: e.t.SchemeID, Meta: e.t.Meta, Tuples: e.t.Tuples}
}

// observeScan feeds one scan's outcome into the entry's selectivity
// sketch. The token length buckets the prior — the closest thing to a
// per-column signal the ciphertext carries (PerColumnWidth layouts give
// each column group its own token length).
func (e *tableEntry) observeScan(q *ph.EncryptedQuery, hits, scanned int) {
	e.sketch.Observe(stats.TokenDigest(q.SchemeID, q.Token), len(q.Token), hits, scanned)
}

// planConj gathers the planner inputs for one conjunctive query under
// the caller's read lock: per conjunct, the result-cache state (a hit
// makes the conjunct free; a prefix entry halves its cost) and the
// sketch's selectivity estimate, then orders everything into a Plan.
func (e *tableEntry) planConj(c *cache.Cache, name string, qs []*ph.EncryptedQuery) (*query.Plan, error) {
	n := len(e.t.Tuples)
	conjs := make([]*query.Conjunct, len(qs))
	for i, q := range qs {
		cj := &query.Conjunct{Index: i, Q: q}
		outcome := cache.Miss
		var ent cache.Entry
		if c != nil {
			ent, outcome = c.Lookup(name, q, e.base, n)
		}
		switch outcome {
		case cache.Hit:
			cj.Cached = query.CachedFull
			cj.Positions, cj.Scanned = ent.Positions, ent.Scanned
			cj.EstKnown = true
			if n > 0 {
				cj.Est = float64(len(ent.Positions)) / float64(n)
			}
		case cache.Delta:
			cj.Cached = query.CachedPrefix
			cj.Positions, cj.Scanned = ent.Positions, ent.Scanned
			if ent.Scanned > 0 {
				cj.EstKnown = true
				cj.Est = float64(len(ent.Positions)) / float64(ent.Scanned)
			}
		default:
			cj.Est, cj.EstKnown = e.sketch.Estimate(stats.TokenDigest(q.SchemeID, q.Token), len(q.Token))
		}
		conjs[i] = cj
	}
	return query.Build(name, n, conjs)
}

// conjLocked plans and executes one conjunctive query under the caller's
// read lock and feeds the results back: every full-table position set
// the run produced goes into the result cache (per-conjunct — a repeated
// conjunct is a cache hit even inside a new combination), and every
// evaluation feeds the selectivity sketch (narrowed passes record the
// conditional selectivity the planner's ordering actually wants).
func conjLocked(e *tableEntry, c *cache.Cache, sh *scanshare.Sharer, name string, qs []*ph.EncryptedQuery) ([]int, *query.Plan, error) {
	plan, err := e.planConj(c, name, qs)
	if err != nil {
		return nil, nil, err
	}
	if sh != nil {
		// The driver conjunct's uncached full scan rides the table's
		// shared pass, exactly like a single cold Query.
		plan.FullScan = func(q *ph.EncryptedQuery) ([]int, bool, error) {
			return sh.Scan(e, e.shareSnapshot(), q)
		}
	}
	positions, err := plan.Run(e.t)
	if err != nil {
		return nil, nil, err
	}
	n := len(e.t.Tuples)
	for _, cj := range plan.Conjuncts {
		if cj.FullPositions != nil {
			if c != nil {
				c.Store(name, cj.Q, cache.Entry{Positions: cj.FullPositions, Scanned: n, Version: e.version})
			}
			e.observeScan(cj.Q, len(cj.FullPositions), n)
		} else if cj.Tested > 0 {
			// Narrowed pass — plain or over a cached prefix's tail: its
			// hits among the tested positions are the conjunct's
			// selectivity conditioned on the predicates before it.
			e.observeScan(cj.Q, cj.NarrowHits, cj.Tested)
		}
	}
	return positions, plan, nil
}

// QueryConj evaluates a conjunction of encrypted queries against the
// named table through the selectivity-ordered planner, under one
// read-locked snapshot, and returns only the tuples in the intersection
// together with the executed plan's summary. Intersecting position sets
// server-side reveals nothing beyond the per-conjunct access pattern a
// batched query already shows the server.
func (s *Store) QueryConj(name string, qs []*ph.EncryptedQuery) (*ph.Result, *query.PlanInfo, error) {
	e, c, sh, err := s.entry(name)
	if err != nil {
		return nil, nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	positions, plan, err := conjLocked(e, c, sh, name, qs)
	if err != nil {
		return nil, nil, err
	}
	return ph.SelectPositions(e.t, positions), plan.Info(), nil
}

// QueryConjVerified is QueryConj with the one-round verified-read
// discipline of QueryVerified extended to conjunctions: the
// intersection's tuples travel with inclusion proofs, root, leaf count
// and version cut from the same read-locked snapshot that planned and
// executed the conjunction.
func (s *Store) QueryConjVerified(name string, qs []*ph.EncryptedQuery) (*authindex.VerifiedResult, *query.PlanInfo, error) {
	e, c, sh, err := s.entry(name)
	if err != nil {
		return nil, nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	positions, plan, err := conjLocked(e, c, sh, name, qs)
	if err != nil {
		return nil, nil, err
	}
	tree := e.authTree()
	proofs, err := tree.Prove(positions)
	if err != nil {
		return nil, nil, err
	}
	return &authindex.VerifiedResult{
		Result:  ph.SelectPositions(e.t, positions),
		Root:    tree.Root(),
		Leaves:  len(e.t.Tuples),
		Version: e.version,
		Proofs:  proofs,
	}, plan.Info(), nil
}

// ExplainConj builds — but does not execute — the plan for a
// conjunctive query: conjunct order, selectivity estimates, and each
// conjunct's predicted serving path. The cache is consulted exactly as
// execution would (which counts in its statistics), but no tuple is
// scanned.
func (s *Store) ExplainConj(name string, qs []*ph.EncryptedQuery) (*query.PlanInfo, error) {
	e, c, _, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	plan, err := e.planConj(c, name, qs)
	if err != nil {
		return nil, err
	}
	plan.Annotate()
	return plan.Info(), nil
}

// Root returns the named table's authenticated-index root, tuple count
// and version, all from one read-locked snapshot. The tree is built on
// first use and extended incrementally afterwards, so this is O(1)
// hashing on a quiescent table and O(tail) after appends — never the
// seed's deep-copy-and-rebuild.
func (s *Store) Root(name string) (root []byte, tuples int, version uint64, err error) {
	e, _, _, err := s.entry(name)
	if err != nil {
		return nil, 0, 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.authTree().Root(), len(e.t.Tuples), e.version, nil
}

// Prove returns inclusion proofs for the given positions plus the root,
// tuple count and version of the snapshot that produced them, under one
// read-lock acquisition. Note that the legacy two-round protocol
// (CmdRoot, then CmdProve) still races mutations *between* the two calls
// — these proofs verify against the root returned here, not necessarily
// against one fetched earlier; QueryVerified is the race-free path.
func (s *Store) Prove(name string, positions []int) (proofs []authindex.Proof, root []byte, tuples int, version uint64, err error) {
	e, _, _, err := s.entry(name)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	tree := e.authTree()
	proofs, err = tree.Prove(positions)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return proofs, tree.Root(), len(e.t.Tuples), e.version, nil
}

// QueryVerified evaluates the encrypted query and builds inclusion
// proofs for every matching tuple from the same table snapshot, under a
// single read-lock acquisition: the result, proofs, root, leaf count and
// version are mutually consistent by construction, which is what
// eliminates the Root/Prove TOCTOU of the legacy protocol. The
// evaluation itself goes through the same result-cache path as Query, so
// a verified hot-word query costs the cache hit plus O(matches · log n)
// proof hashes.
func (s *Store) QueryVerified(name string, q *ph.EncryptedQuery) (*authindex.VerifiedResult, error) {
	e, c, sh, err := s.entry(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	res, err := queryLocked(e, c, sh, name, q)
	if err != nil {
		return nil, err
	}
	tree := e.authTree()
	proofs, err := tree.Prove(res.Positions)
	if err != nil {
		return nil, err
	}
	return &authindex.VerifiedResult{
		Result:  res,
		Root:    tree.Root(),
		Leaves:  len(e.t.Tuples),
		Version: e.version,
		Proofs:  proofs,
	}, nil
}

// Drop removes the named table. Like Put, the record is staged while
// holding the store lock and the entry's lock (ordering it after every
// logged append to the entry), and the durability wait is lock-free.
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	e, ok := s.tables[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("storage: unknown table %q", name)
	}
	e.mu.Lock()
	var seq uint64
	if s.wal != nil {
		var err error
		if seq, err = s.wal.write(opDrop, wire.AppendString(nil, name)); err != nil {
			e.mu.Unlock()
			s.mu.Unlock()
			return err
		}
	}
	e.stale = true
	e.mu.Unlock()
	s.clock.Add(1)
	delete(s.tables, name)
	if s.cache != nil {
		s.cache.InvalidateTable(name)
	}
	s.mu.Unlock()
	if s.wal != nil {
		return s.wal.waitDurable(seq)
	}
	return nil
}

// Compact rewrites the log so it holds exactly one store record per live
// table, discarding superseded stores, appended-tuple records and dropped
// tables. It is a no-op for in-memory stores. The rewrite goes through a
// temporary file and an atomic rename; the store keeps a usable log on
// EVERY failure path: the new file is opened for appending before the
// rename, so the old log is replaced only once its successor is fully
// written, fsynced and renamed into place. A crash mid-compaction leaves
// either the old or the new log intact.
//
// Compact holds the store lock and every table's read lock for the
// duration, so mutations pause but queries proceed. Quiescing writers
// this way also guarantees the log writer has nothing in flight when the
// file is swapped. Compaction does not bump table versions: the tuples
// are untouched, and cache validity is keyed on lineage base and scanned
// prefix, so cached results keep hitting.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	// Take every table's read lock (sorted, for determinism): appenders
	// past their catalogue lookup hold or await the table write lock, so
	// once these are held no log write is in flight and none can start.
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.tables[name]
		e.mu.RLock()
		defer e.mu.RUnlock()
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("storage: creating compaction file: %w", err)
	}
	abort := func(e error) error {
		_ = tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	var buf []byte
	var size int64
	for _, name := range names {
		e := s.tables[name]
		payload := wire.AppendString(nil, name)
		payload = wire.EncodeTable(payload, e.t)
		// A table grown past the frame cap cannot be represented as one
		// store record; writing it anyway would replay as corruption and
		// silently drop the table. Keep the old (valid) log instead.
		if len(payload) > wire.MaxFrameSize {
			return abort(fmt.Errorf("storage: table %q compacts to %d bytes, above the %d-byte record cap", name, len(payload), wire.MaxFrameSize))
		}
		buf = appendWALRecord(buf[:0], opStore, payload)
		if _, err := tmp.Write(buf); err != nil {
			return abort(fmt.Errorf("storage: writing compacted record: %w", err))
		}
		size += int64(len(buf))
	}
	//phlint:ignore lockio log rotation is stop-the-world by design: every table is quiesced and the swap must be atomic with the catalogue
	return s.rotateLog(tmp, tmpPath, size, uint64(len(names)))
}

// rotateLog swaps a fully written replacement log file into place under
// Compact's crash discipline, shared by Compact, Reset and
// InstallSnapshot. The caller holds s.mu exclusively and has quiesced
// every table (so the log writer has nothing in flight), and has
// written tmp's records but not synced them. On any failure before the
// rename the temp file is removed and the old log — still valid — stays
// in force. The local shipping epoch is rotated BEFORE the swap: a
// follower cursor minted against the old file must never resolve into
// the replacement (same sequence number, different record). The sidecar
// is written and fsynced first, so a crash between the two steps leaves
// a new epoch over the old log — followers re-bootstrap needlessly,
// which is safe; the reverse order could pair the old epoch with the
// new file, which silently diverges.
func (s *Store) rotateLog(tmp *os.File, tmpPath string, size int64, recs uint64) error {
	abort := func(e error) error {
		_ = tmp.Close()
		os.Remove(tmpPath)
		return e
	}
	if err := tmp.Sync(); err != nil {
		return abort(fmt.Errorf("storage: syncing replacement log: %w", err))
	}
	newEpoch, err := randomEpoch()
	if err != nil {
		return abort(err)
	}
	if err := writeEpoch(s.path, newEpoch); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return abort(fmt.Errorf("storage: swapping replacement log: %w", err))
	}
	// The already-open handle follows the inode across the rename, so
	// the store never holds a closed or dangling log, whatever failed
	// above. installFile releases any group-commit waiters (their
	// records are superseded by the replacement, fsynced file), clears
	// any sticky write error, and restarts the shipping sequence at the
	// replacement's record count.
	var lf LogFile = tmp
	if s.wrapLog != nil {
		lf = s.wrapLog(tmp)
	}
	ierr := s.wal.installFile(lf, size, recs)
	if errors.Is(ierr, errLogClosed) {
		return ierr
	}
	// The swap happened: publish the new epoch (we hold s.mu exclusively,
	// which is what serialises this against ReadLog's epoch reads),
	// point the ship cursor cache at the new file's origin, and drop
	// state bound to the old file: the persisted shipping base (its
	// ownEpoch binding just broke, by design) and any cached snapshot.
	s.epoch = newEpoch
	s.shipMu.Lock()
	s.shipEpoch, s.shipSeq, s.shipOff = newEpoch, 0, 0
	s.shipMu.Unlock()
	s.baseValid = false
	s.snapMu.Lock()
	s.snapBuf = nil
	s.snapMu.Unlock()
	return ierr
}

// LogSize returns the byte size of the persistence log, or 0 for in-memory
// stores. No lock is needed: the path is immutable and the size is a
// point-in-time observation either way.
func (s *Store) LogSize() (int64, error) {
	if s.wal == nil {
		return 0, nil
	}
	info, err := os.Stat(s.path)
	if err != nil {
		return 0, fmt.Errorf("storage: stat log: %w", err)
	}
	return info.Size(), nil
}

// List returns the directory of stored tables, sorted by name.
func (s *Store) List() []wire.TableInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]wire.TableInfo, 0, len(s.tables))
	for name, e := range s.tables {
		e.mu.RLock()
		infos = append(infos, wire.TableInfo{Name: name, SchemeID: e.t.SchemeID, Tuples: len(e.t.Tuples)})
		e.mu.RUnlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
