package crypto

import (
	"bytes"
	"testing"
)

func TestSealerRoundTrip(t *testing.T) {
	s, err := NewSealer(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the tuple bytes")
	ct, err := s.Seal(pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip: got %q want %q", got, pt)
	}
}

func TestSealerProbabilistic(t *testing.T) {
	s, _ := NewSealer(testKey(2))
	a, _ := s.Seal([]byte("same"))
	b, _ := s.Seal([]byte("same"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext are identical (nonce reuse?)")
	}
}

func TestSealerTamperDetection(t *testing.T) {
	s, _ := NewSealer(testKey(3))
	ct, _ := s.Seal([]byte("payload"))
	for i := range ct {
		mangled := append([]byte(nil), ct...)
		mangled[i] ^= 0x80
		if _, err := s.Open(mangled); err == nil {
			t.Fatalf("Open accepted ciphertext with byte %d flipped", i)
		}
	}
}

func TestSealerWrongKey(t *testing.T) {
	s1, _ := NewSealer(testKey(4))
	s2, _ := NewSealer(testKey(5))
	ct, _ := s1.Seal([]byte("secret"))
	if _, err := s2.Open(ct); err == nil {
		t.Fatal("Open succeeded under the wrong key")
	}
}

func TestSealerShortCiphertext(t *testing.T) {
	s, _ := NewSealer(testKey(6))
	if _, err := s.Open([]byte{1, 2, 3}); err == nil {
		t.Fatal("Open accepted a ciphertext shorter than the nonce")
	}
}

func TestSealerEmptyPlaintext(t *testing.T) {
	s, _ := NewSealer(testKey(7))
	ct, err := s.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(ct)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty plaintext round trip returned %d bytes", len(got))
	}
}
