package storage

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/authindex"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/workload"
)

// conjFixture uploads an encrypted employee table and returns the store,
// the scheme and token factories for its columns.
func conjFixture(t *testing.T, tuples int) (*Store, ph.Scheme, func(col string, v relation.Value) *ph.EncryptedQuery) {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	table, err := workload.Employees(tuples, 5)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		t.Fatal(err)
	}
	s := NewMemory()
	if err := s.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	token := func(col string, v relation.Value) *ph.EncryptedQuery {
		q, err := scheme.EncryptQuery(relation.Eq{Column: col, Value: v})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	return s, scheme, token
}

// naiveConjPositions intersects per-query evaluator results — the
// reference the planner must reproduce byte for byte.
func naiveConjPositions(t *testing.T, s *Store, qs []*ph.EncryptedQuery) []int {
	t.Helper()
	et, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for i, q := range qs {
		res, err := ph.Apply(et, q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			out = res.Positions
		} else {
			out = ph.IntersectPositions(out, res.Positions)
		}
	}
	if out == nil {
		out = []int{}
	}
	return out
}

func TestQueryConjMatchesIntersection(t *testing.T) {
	s, _, token := conjFixture(t, 300)
	cases := [][]*ph.EncryptedQuery{
		{token("dept", relation.String("HR")), token("salary", relation.Int(1234))},
		{token("dept", relation.String("HR")), token("dept", relation.String("IT"))},
		{token("dept", relation.String("HR")), token("dept", relation.String("HR"))},
		{token("dept", relation.String("IT")), token("name", relation.String("nobody")), token("salary", relation.Int(1))},
		{token("dept", relation.String("FIN"))},
	}
	for ci, qs := range cases {
		want := naiveConjPositions(t, s, qs)
		res, info, err := s.QueryConj("emp", qs)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !reflect.DeepEqual(res.Positions, want) {
			t.Fatalf("case %d: positions %v, want %v", ci, res.Positions, want)
		}
		if len(res.Tuples) != len(want) {
			t.Fatalf("case %d: %d tuples for %d positions", ci, len(res.Tuples), len(want))
		}
		if info == nil || len(info.Steps) != len(qs) {
			t.Fatalf("case %d: plan info %+v, want %d steps", ci, info, len(qs))
		}
	}
}

// TestQueryConjCachesConjuncts: the driver's full position set lands in
// the result cache, so a repeated conjunct is a hit even in a brand-new
// combination.
func TestQueryConjCachesConjuncts(t *testing.T) {
	s, _, token := conjFixture(t, 200)
	hr := token("dept", relation.String("HR"))
	it := token("dept", relation.String("IT"))
	if _, _, err := s.QueryConj("emp", []*ph.EncryptedQuery{hr, it}); err != nil {
		t.Fatal(err)
	}
	// The driver (whichever the planner picked) was cached; in a new
	// combination it must be served from the cache.
	before := s.CacheStats()
	_, info, err := s.QueryConj("emp", []*ph.EncryptedQuery{hr, token("salary", relation.Int(99))})
	if err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	hadHit := false
	for _, st := range info.Steps {
		if st.Source == query.SourceHit {
			hadHit = true
		}
	}
	if !hadHit && after.Hits == before.Hits {
		t.Fatalf("repeated conjunct not served from cache; plan %+v, stats %+v -> %+v", info, before, after)
	}
}

// TestQueryConjLearnsSelectivity: after the sketch observes both
// conjuncts, a fresh store-side combination orders the selective one
// first.
func TestQueryConjLearnsSelectivity(t *testing.T) {
	s, _, token := conjFixture(t, 400)
	broad := token("dept", relation.String("HR")) // Zipf head: broad
	rare := token("salary", relation.Int(1234))   // near-unique
	// Observe both marginals through single queries (cache disabled so
	// the second round cannot be served without planning).
	if _, err := s.Query("emp", broad); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("emp", rare); err != nil {
		t.Fatal(err)
	}
	s.SetResultCache(nil)
	_, info, err := s.QueryConj("emp", []*ph.EncryptedQuery{broad, rare})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Steps) != 2 {
		t.Fatalf("want 2 steps, got %+v", info)
	}
	first := info.Steps[0]
	if first.Index != 1 {
		t.Fatalf("planner drove with conjunct %d (est %.4f), want the rare conjunct 1; plan %+v",
			first.Index, first.Est, info)
	}
	if !first.EstKnown {
		t.Fatal("driver estimate should be marked observed after prior scans")
	}
}

// TestQueryConjDeltaAfterAppend: a conjunct cached before an append is
// completed by scanning only the tail.
func TestQueryConjDeltaAfterAppend(t *testing.T) {
	s, scheme, token := conjFixture(t, 128)
	hr := token("dept", relation.String("HR"))
	it := token("dept", relation.String("IT"))
	// Cache both conjuncts' full position sets via single queries.
	if _, err := s.Query("emp", hr); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("emp", it); err != nil {
		t.Fatal(err)
	}
	// Append fresh tuples; cached entries become prefixes.
	extra, err := workload.Employees(32, 77)
	if err != nil {
		t.Fatal(err)
	}
	ect, err := scheme.EncryptTable(extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", ect.Tuples); err != nil {
		t.Fatal(err)
	}
	want := naiveConjPositions(t, s, []*ph.EncryptedQuery{hr, it})
	res, info, err := s.QueryConj("emp", []*ph.EncryptedQuery{hr, it})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Positions, want) {
		t.Fatalf("positions after append %v, want %v", res.Positions, want)
	}
	for _, st := range info.Steps {
		if st.Source == query.SourceScan {
			t.Fatalf("conjunct %d full-scanned after append despite cached prefix; plan %+v", st.Index, info)
		}
	}
}

// TestQueryConjVerifiedSnapshotConsistent: the verified variant's
// proofs always verify against the root they travel with, and the
// result equals the plain conjunctive result.
func TestQueryConjVerifiedSnapshotConsistent(t *testing.T) {
	s, _, token := conjFixture(t, 200)
	qs := []*ph.EncryptedQuery{token("dept", relation.String("HR")), token("salary", relation.Int(1234))}
	want := naiveConjPositions(t, s, qs)
	vr, info, err := s.QueryConjVerified("emp", qs)
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("verified conjunctive query must report its plan")
	}
	if !reflect.DeepEqual(vr.Result.Positions, want) {
		t.Fatalf("verified positions %v, want %v", vr.Result.Positions, want)
	}
	if len(vr.Proofs) != len(vr.Result.Tuples) {
		t.Fatalf("%d proofs for %d tuples", len(vr.Proofs), len(vr.Result.Tuples))
	}
	for i, p := range vr.Proofs {
		if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
			t.Fatalf("proof %d rejected: %v", i, err)
		}
	}
	et, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if want := authindex.Build(et).Root(); !bytes.Equal(vr.Root, want) {
		t.Fatal("verified root differs from a rebuild of the served table")
	}
}

func TestExplainConjDoesNotExecute(t *testing.T) {
	s, _, token := conjFixture(t, 256)
	qs := []*ph.EncryptedQuery{token("dept", relation.String("HR")), token("salary", relation.Int(1234))}
	info, err := s.ExplainConj("emp", qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Steps) != 2 || info.Tuples != 256 {
		t.Fatalf("explain info %+v", info)
	}
	for _, st := range info.Steps {
		if st.Tested != 0 || st.Hits != 0 {
			t.Fatalf("explain must not execute; step %+v reports work", st)
		}
	}
	// Nothing was scanned, so nothing entered the result cache.
	if n := 0; s.CacheStats().Hits != uint64(n) {
		t.Fatalf("explain produced cache hits: %+v", s.CacheStats())
	}
	// And a subsequent real run is still a miss-driven execution that
	// matches the reference.
	want := naiveConjPositions(t, s, qs)
	res, _, err := s.QueryConj("emp", qs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Positions, want) {
		t.Fatalf("positions after explain %v, want %v", res.Positions, want)
	}
}

func TestQueryConjErrors(t *testing.T) {
	s, _, token := conjFixture(t, 16)
	if _, _, err := s.QueryConj("missing", []*ph.EncryptedQuery{token("dept", relation.String("HR"))}); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, _, err := s.QueryConj("emp", nil); err == nil {
		t.Fatal("empty conjunction must error")
	}
	if _, err := s.ExplainConj("emp", nil); err == nil {
		t.Fatal("empty explain must error")
	}
}

// TestConcurrentAppendConjQuery races appends against conjunctive
// queries (plain and verified) under -race: every answer must be
// internally consistent — a prefix of the reference intersection
// computed over some append boundary — and verified answers must verify
// against the root they carry.
func TestConcurrentAppendConjQuery(t *testing.T) {
	s, scheme, token := conjFixture(t, 256)
	qs := []*ph.EncryptedQuery{token("dept", relation.String("HR")), token("dept", relation.String("HR"))}
	extra, err := workload.Employees(8, 99)
	if err != nil {
		t.Fatal(err)
	}
	ect, err := scheme.EncryptTable(extra)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := s.Append("emp", ect.Tuples); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g%2 == 0 {
					res, _, err := s.QueryConj("emp", qs)
					if err != nil {
						t.Error(err)
						return
					}
					if len(res.Positions) != len(res.Tuples) {
						t.Errorf("inconsistent result: %d positions, %d tuples", len(res.Positions), len(res.Tuples))
						return
					}
				} else {
					vr, _, err := s.QueryConjVerified("emp", qs)
					if err != nil {
						t.Error(err)
						return
					}
					for i, p := range vr.Proofs {
						if err := authindex.Verify(vr.Root, vr.Leaves, vr.Result.Tuples[i], p); err != nil {
							t.Errorf("racing verified proof %d rejected: %v", i, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
