package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Fatal("Mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of singleton should be 0")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3) {
		t.Fatalf("StdDev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if !almost(Quantile(xs, 0.5), 3, 1e-12) {
		t.Fatal("median wrong")
	}
	if !almost(Quantile(xs, 0.25), 2, 1e-12) {
		t.Fatal("q25 wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Quantile must not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBinomial(t *testing.T) {
	b := Binomial{Wins: 75, Trials: 100}
	if !almost(b.Rate(), 0.75, 1e-12) {
		t.Fatal("Rate wrong")
	}
	if !almost(b.Advantage(), 0.5, 1e-12) {
		t.Fatal("Advantage wrong")
	}
	if (Binomial{}).Rate() != 0 {
		t.Fatal("empty binomial rate should be 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	b := Binomial{Wins: 50, Trials: 100}
	lo, hi := b.WilsonInterval(1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] must contain the point estimate", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("interval [%v, %v] out of [0,1]", lo, hi)
	}
	// More trials must narrow the interval.
	lo2, hi2 := (Binomial{Wins: 500, Trials: 1000}).WilsonInterval(1.96)
	if hi2-lo2 >= hi-lo {
		t.Fatal("interval did not narrow with more trials")
	}
	lo3, hi3 := (Binomial{}).WilsonInterval(1.96)
	if lo3 != 0 || hi3 != 1 {
		t.Fatal("empty binomial should give the vacuous interval")
	}
}

func TestWilsonIntervalProperty(t *testing.T) {
	f := func(w, n uint16) bool {
		trials := int(n%1000) + 1
		wins := int(w) % (trials + 1)
		lo, hi := (Binomial{Wins: wins, Trials: trials}).WilsonInterval(1.96)
		p := float64(wins) / float64(trials)
		return lo >= 0 && hi <= 1 && lo <= p+1e-9 && hi >= p-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHoeffdingRadius(t *testing.T) {
	b := Binomial{Wins: 0, Trials: 1000}
	r := b.HoeffdingRadius(0.05)
	if r <= 0 || r >= 1 {
		t.Fatalf("radius %v out of range", r)
	}
	r2 := (Binomial{Wins: 0, Trials: 4000}).HoeffdingRadius(0.05)
	if !almost(r2, r/2, 1e-9) {
		t.Fatalf("radius should halve with 4x trials: %v vs %v", r2, r)
	}
	if (Binomial{}).HoeffdingRadius(0.05) != 1 {
		t.Fatal("empty binomial radius should be vacuous")
	}
}

func TestEntropy(t *testing.T) {
	if !almost(Entropy([]float64{1, 1}), 1, 1e-12) {
		t.Fatal("fair coin should have 1 bit")
	}
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Fatal("point mass should have 0 bits")
	}
	if !almost(Entropy([]float64{1, 1, 1, 1}), 2, 1e-12) {
		t.Fatal("uniform over 4 should have 2 bits")
	}
	if Entropy(nil) != 0 {
		t.Fatal("empty distribution entropy should be 0")
	}
}

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || !almost(d, 1, 1e-12) {
		t.Fatalf("disjoint distributions should have TV 1: %v %v", d, err)
	}
	d, err = TotalVariation([]float64{1, 1}, []float64{2, 2})
	if err != nil || !almost(d, 0, 1e-12) {
		t.Fatalf("identical (normalised) distributions should have TV 0: %v %v", d, err)
	}
	if _, err := TotalVariation([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched supports accepted")
	}
	if _, err := TotalVariation([]float64{0}, []float64{1}); err == nil {
		t.Fatal("empty distribution accepted")
	}
}
