// Package crypto provides the cryptographic substrate for the reproduction:
// pseudorandom functions (HMAC-SHA256), a pseudorandom generator (AES-CTR),
// a length-preserving pseudorandom permutation (a four-round Feistel network
// in the style of Luby–Rackoff), key derivation, and an AEAD wrapper for the
// strong tuple encryption used by the comparator schemes.
//
// Everything is built on the Go standard library. The constructions are the
// textbook ones the paper's building blocks assume: Song–Wagner–Perrig's
// searchable encryption (internal/swp) is specified in terms of a
// pseudorandom generator G, pseudorandom functions f and F, and a
// deterministic pre-encryption E; this package supplies all four.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
)

// KeySize is the byte length of all symmetric keys in this repository.
const KeySize = 32

// Key is a fixed-size symmetric key.
type Key [KeySize]byte

// PRF is a keyed pseudorandom function based on HMAC-SHA256 with
// counter-mode output expansion: output block i is
// HMAC(key, uint32(i) || input). Under the standard PRF assumption on HMAC,
// outputs of any requested length are indistinguishable from random.
//
// A PRF carries one reusable HMAC state (constructed once, Reset per call),
// so evaluations after the first perform no heap allocations when routed
// through SumInto. A mutex guards that shared state, so a single PRF stays
// safe for concurrent use: an uncontended caller takes the zero-alloc fast
// path, while a caller that finds the state busy falls back to a fresh
// one-shot HMAC (allocating, but fully parallel — the old stateless
// behaviour). Hot paths that need zero allocations under concurrency hand
// each goroutine its own instance via Clone (which is what swp.Matcher
// does).
type PRF struct {
	key     Key
	mu      sync.Mutex        // guards mac, ctr and scratch
	mac     hash.Hash         // reusable HMAC-SHA256 state, keyed with key
	ctr     [4]byte           // counter scratch (a field so it never escapes per call)
	scratch [sha256.Size]byte // digest scratch for partial-block output
}

// NewPRF constructs a PRF with the given key.
func NewPRF(key Key) *PRF {
	return &PRF{key: key, mac: hmac.New(sha256.New, key[:])}
}

// Clone returns an independent PRF with the same key. Use it to hand each
// worker goroutine its own evaluation state.
func (p *PRF) Clone() *PRF { return NewPRF(p.key) }

// SumInto computes the PRF of input and writes exactly len(dst) bytes of
// output into dst. It is the zero-allocation core of the PRF: the HMAC
// state is reused across calls, and output lands in caller-owned memory.
func (p *PRF) SumInto(dst, input []byte) {
	if !p.mu.TryLock() {
		// The shared state is busy: compute with a fresh one-shot HMAC
		// instead of queueing, so concurrent callers of one PRF keep the
		// old stateless path's full parallelism.
		sumOneShot(hmac.New(sha256.New, p.key[:]), dst, input)
		return
	}
	defer p.mu.Unlock()
	if p.mac == nil {
		// Zero-value PRFs (not built by NewPRF) still work; they just pay
		// the construction cost on first use.
		p.mac = hmac.New(sha256.New, p.key[:])
	}
	for block, off := uint32(0), 0; off < len(dst); block++ {
		p.mac.Reset()
		binary.BigEndian.PutUint32(p.ctr[:], block)
		p.mac.Write(p.ctr[:])
		p.mac.Write(input)
		if len(dst)-off >= sha256.Size {
			p.mac.Sum(dst[off:off:len(dst)])
			off += sha256.Size
		} else {
			s := p.mac.Sum(p.scratch[:0])
			off += copy(dst[off:], s)
		}
	}
}

// sumOneShot is the counter-mode expansion over a caller-owned HMAC state,
// used by the contention fallback.
func sumOneShot(mac hash.Hash, dst, input []byte) {
	var ctr [4]byte
	var scratch [sha256.Size]byte
	for block, off := uint32(0), 0; off < len(dst); block++ {
		mac.Reset()
		binary.BigEndian.PutUint32(ctr[:], block)
		mac.Write(ctr[:])
		mac.Write(input)
		s := mac.Sum(scratch[:0])
		off += copy(dst[off:], s)
	}
}

// ChecksumInto writes the m-byte SWP-style checksum F_k(input) into dst
// (m = len(dst)). It is SumInto under the name the searchable-encryption
// layer uses for it; the distinct name keeps call sites self-describing.
func (p *PRF) ChecksumInto(dst, input []byte) { p.SumInto(dst, input) }

// Sum computes the PRF of input truncated or expanded to n bytes. It is a
// thin allocating wrapper over SumInto.
func (p *PRF) Sum(input []byte, n int) []byte {
	out := make([]byte, n)
	p.SumInto(out, input)
	return out
}

// SumStrings is a convenience wrapper that evaluates the PRF on the
// length-prefixed concatenation of the given byte strings, making the input
// encoding injective.
func (p *PRF) SumStrings(n int, parts ...[]byte) []byte {
	var buf []byte
	var len4 [4]byte
	for _, part := range parts {
		binary.BigEndian.PutUint32(len4[:], uint32(len(part)))
		buf = append(buf, len4[:]...)
		buf = append(buf, part...)
	}
	return p.Sum(buf, n)
}

// DeriveKey derives a subkey from the PRF's key for the given label and
// context. It implements a simple HKDF-expand-style derivation: the label
// separates domains (e.g. "swp/f", "swp/seed"), the context binds instance
// data (e.g. a document identifier).
func (p *PRF) DeriveKey(label string, context []byte) Key {
	var k Key
	out := p.SumStrings(KeySize, []byte(label), context)
	copy(k[:], out)
	return k
}

// KeyFromBytes copies up to KeySize bytes into a Key; shorter inputs are
// hashed to fill the key so that all bits depend on all input bytes.
func KeyFromBytes(b []byte) Key {
	var k Key
	if len(b) >= KeySize {
		copy(k[:], b[:KeySize])
		return k
	}
	h := sha256.Sum256(b)
	copy(k[:], h[:])
	return k
}

// CheckKeyLen validates an externally supplied key slice.
func CheckKeyLen(b []byte) error {
	if len(b) != KeySize {
		return fmt.Errorf("crypto: key must be %d bytes, got %d", KeySize, len(b))
	}
	return nil
}
