package relation

import (
	"fmt"
	"strings"
)

// Pred is a predicate over tuples of a given schema. The paper's construction
// preserves exact selects only, so the predicate language is deliberately
// small: equality tests and conjunctions of them. Conjunctions are pushed
// down to the server's planner (internal/query), which intersects the
// per-conjunct position sets; client-side, And doubles as the
// false-positive filter after decryption and as the legacy
// intersection fallback for pre-pushdown servers.
type Pred interface {
	// Eval reports whether the tuple satisfies the predicate.
	Eval(s *Schema, t Tuple) (bool, error)
	// Validate checks the predicate against the schema (columns exist,
	// types match).
	Validate(s *Schema) error
	// String renders the predicate in σ-notation.
	String() string
}

// Eq is the exact-select predicate σ_{Column = Value}.
type Eq struct {
	// Column is the attribute name.
	Column string
	// Value is the constant to compare against.
	Value Value
}

// Validate implements Pred.
func (e Eq) Validate(s *Schema) error {
	c, ok := s.Column(e.Column)
	if !ok {
		return fmt.Errorf("relation: predicate references unknown column %q in %q", e.Column, s.Name)
	}
	if c.Type != e.Value.Type() {
		return fmt.Errorf("relation: predicate on %q compares %s column to %s value",
			e.Column, c.Type, e.Value.Type())
	}
	if err := e.Value.CheckAgainst(c); err != nil {
		return fmt.Errorf("relation: predicate constant out of range: %w", err)
	}
	return nil
}

// Eval implements Pred.
func (e Eq) Eval(s *Schema, t Tuple) (bool, error) {
	i := s.ColumnIndex(e.Column)
	if i < 0 {
		return false, fmt.Errorf("relation: unknown column %q", e.Column)
	}
	return t[i].Equal(e.Value), nil
}

// String implements Pred.
func (e Eq) String() string {
	return fmt.Sprintf("σ_%s:%s", e.Column, e.Value.Encode())
}

// And is a conjunction of predicates. The homomorphism itself only handles
// a single Eq; a conjunctive query ships one token per conjunct and the
// server intersects their position sets. And is the plaintext-side mirror:
// the client re-evaluates it to filter checksum false positives, and the
// legacy fallback path uses it over Intersect.
type And struct {
	// Preds are the conjuncts; And is satisfied iff all of them are.
	Preds []Pred
}

// Validate implements Pred.
func (a And) Validate(s *Schema) error {
	if len(a.Preds) == 0 {
		return fmt.Errorf("relation: empty conjunction")
	}
	for _, p := range a.Preds {
		if err := p.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval implements Pred.
func (a And) Eval(s *Schema, t Tuple) (bool, error) {
	for _, p := range a.Preds {
		ok, err := p.Eval(s, t)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// String implements Pred.
func (a And) String() string {
	parts := make([]string, len(a.Preds))
	for i, p := range a.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Select evaluates σ_pred(t) and returns the matching tuples as a new table.
func Select(t *Table, pred Pred) (*Table, error) {
	if err := pred.Validate(t.Schema()); err != nil {
		return nil, err
	}
	out := NewTable(t.Schema())
	for _, tp := range t.Tuples() {
		ok, err := pred.Eval(t.Schema(), tp)
		if err != nil {
			return nil, err
		}
		if ok {
			out.tuples = append(out.tuples, tp.Clone())
		}
	}
	return out, nil
}

// Project returns π_cols(t): a new table with only the named columns, in the
// order given. Duplicate tuples are retained (multiset semantics), matching
// SQL's SELECT without DISTINCT.
func Project(t *Table, cols ...string) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: projection needs at least one column")
	}
	idx := make([]int, len(cols))
	newCols := make([]Column, len(cols))
	for i, name := range cols {
		j := t.Schema().ColumnIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: projection references unknown column %q", name)
		}
		idx[i] = j
		newCols[i] = t.Schema().Columns[j]
	}
	s, err := NewSchema(t.Schema().Name, newCols...)
	if err != nil {
		return nil, err
	}
	out := NewTable(s)
	for _, tp := range t.Tuples() {
		ntp := make(Tuple, len(idx))
		for i, j := range idx {
			ntp[i] = tp[j]
		}
		out.tuples = append(out.tuples, ntp)
	}
	return out, nil
}

// Intersect returns the multiset intersection of two tables over the same
// schema. It evaluates conjunctive selects client-side on the legacy
// fallback path (servers without the conjunctive pushdown), and powers the
// paper's intersection attacks (§2).
func Intersect(a, b *Table) (*Table, error) {
	if !a.Schema().Equal(b.Schema()) {
		return nil, fmt.Errorf("relation: intersect over different schemas %q and %q",
			a.Schema().Name, b.Schema().Name)
	}
	counts := make(map[string]int, b.Len())
	for _, tp := range b.Tuples() {
		counts[tp.Key()]++
	}
	out := NewTable(a.Schema())
	for _, tp := range a.Tuples() {
		k := tp.Key()
		if counts[k] > 0 {
			counts[k]--
			out.tuples = append(out.tuples, tp.Clone())
		}
	}
	return out, nil
}
