package shard

import (
	"fmt"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

// Wire codec for the shard-framed commands. A RespResultShard keeps the
// per-shard sub-answers separate — framed by shard id, in strictly
// ascending shard order — because the verifying client checks each one
// against its own entry of the pinned root vector; a pre-merged answer
// would have nothing to verify against. Every count decoded here is
// clamped against what the payload could possibly hold *before* any
// allocation, shard ids must be strictly ascending (duplicates and
// reordering are protocol errors, not merge inputs), and result
// positions must be strictly ascending within their shard — the merge
// operates on (shard, offset) pairs and refuses malformed coordinates
// rather than sorting a hostile answer into shape.

// Sub-payload kinds in a RespResultShard entry.
const (
	// KindResults is a vector of plain results, one per request query:
	// count:u32 | results.
	KindResults byte = 0
	// KindVerified is a vector of verified results, one per request
	// query: count:u32 | verified results.
	KindVerified byte = 1
	// KindConj is one conjunctive query.Response.
	KindConj byte = 2
	// KindTable is the shard's full partition as one ph.EncryptedTable.
	KindTable byte = 3
)

// maxQueriesPerShard caps the declared result count inside one shard's
// sub-payload: a batch is a statement's predicate list, never thousands.
const maxQueriesPerShard = 1 << 16

// Sub is one shard's sub-answer in a RespResultShard. Exactly one of
// the payload fields is set, selected by Kind.
type Sub struct {
	// Shard is the answering shard's index in the partition map.
	Shard int
	// Kind selects the sub-payload codec (Kind*).
	Kind byte
	// Results holds the plain per-query results (KindResults).
	Results []*ph.Result
	// Verified holds the verified per-query results (KindVerified).
	Verified []*authindex.VerifiedResult
	// Conj holds the conjunctive response (KindConj).
	Conj *query.Response
	// Table holds the shard's partition (KindTable).
	Table *ph.EncryptedTable
}

// Ack is one shard's placement acknowledgement in a RespInsertedShard.
type Ack struct {
	// Shard is the acknowledging shard's index.
	Shard int
	// Base is the shard table's tuple count before the append.
	Base int
	// Count is the number of tuples appended on this shard.
	Count int
	// Version is the shard store's version after the append.
	Version uint64
}

// EncodeQueryRequest serialises a CmdShardQuery payload: table name,
// flags (wire.ShardFlag*), query count, queries — the same layout as a
// conjunctive request, because a scatter *is* the same question asked
// of every shard.
func EncodeQueryRequest(dst []byte, name string, flags byte, qs []*ph.EncryptedQuery) []byte {
	return query.EncodeRequest(dst, name, flags, qs)
}

// DecodeQueryRequest parses a CmdShardQuery payload.
func DecodeQueryRequest(payload []byte) (name string, flags byte, qs []*ph.EncryptedQuery, err error) {
	r := wire.NewBuffer(payload)
	if name, err = r.String(); err != nil {
		return "", 0, nil, fmt.Errorf("shard: request name: %w", err)
	}
	if flags, err = r.U8(); err != nil {
		return "", 0, nil, fmt.Errorf("shard: request flags: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return "", 0, nil, fmt.Errorf("shard: request query count: %w", err)
	}
	// A query is at least two length-prefixed fields, so the remaining
	// payload bounds how many a non-hostile count can declare.
	qs = make([]*ph.EncryptedQuery, 0, wire.ClampCount(n, r.Remaining()/8))
	for i := uint32(0); i < n; i++ {
		q, err := wire.DecodeQuery(r)
		if err != nil {
			return "", 0, nil, fmt.Errorf("shard: request query %d: %w", i, err)
		}
		qs = append(qs, q)
	}
	return name, flags, qs, nil
}

// checkPositions rejects results whose positions are not strictly
// ascending: merge coordinates are (shard, offset) pairs, and a shard
// that answers duplicate or descending offsets is malformed (or lying),
// not merge input.
func checkPositions(res *ph.Result) error {
	for i, p := range res.Positions {
		if p < 0 {
			return fmt.Errorf("shard: negative result position %d", p)
		}
		if i > 0 && p <= res.Positions[i-1] {
			return fmt.Errorf("shard: result positions not strictly ascending (%d after %d)", p, res.Positions[i-1])
		}
	}
	return nil
}

// EncodeResponse serialises a RespResultShard payload: the partition
// map version and the sub-answers in ascending shard order.
func EncodeResponse(dst []byte, mapVersion uint64, subs []Sub) []byte {
	dst = wire.AppendU64(dst, mapVersion)
	dst = wire.AppendU32(dst, uint32(len(subs)))
	for _, sub := range subs {
		dst = wire.AppendU32(dst, uint32(sub.Shard))
		dst = wire.AppendU8(dst, sub.Kind)
		var body []byte
		switch sub.Kind {
		case KindResults:
			body = wire.AppendU32(body, uint32(len(sub.Results)))
			for _, res := range sub.Results {
				body = wire.EncodeResult(body, res)
			}
		case KindVerified:
			body = wire.AppendU32(body, uint32(len(sub.Verified)))
			for _, vr := range sub.Verified {
				body = authindex.EncodeVerifiedResult(body, vr)
			}
		case KindConj:
			body = query.EncodeResponse(body, sub.Conj)
		case KindTable:
			body = wire.EncodeTable(body, sub.Table)
		}
		dst = wire.AppendBytes(dst, body)
	}
	return dst
}

// DecodeResponse parses a RespResultShard payload. maxShards bounds the
// declared sub-answer count (the caller knows its partition map); shard
// ids must be strictly ascending and inside the map.
func DecodeResponse(payload []byte, maxShards int) (mapVersion uint64, subs []Sub, err error) {
	r := wire.NewBuffer(payload)
	if mapVersion, err = r.U64(); err != nil {
		return 0, nil, fmt.Errorf("shard: response map version: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return 0, nil, fmt.Errorf("shard: response shard count: %w", err)
	}
	if int64(n) > int64(maxShards) {
		return 0, nil, fmt.Errorf("shard: response declares %d shards, partition map has %d", n, maxShards)
	}
	subs = make([]Sub, 0, wire.ClampCount(n, r.Remaining()/9))
	prev := -1
	for i := uint32(0); i < n; i++ {
		id, err := r.U32()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: sub-answer %d shard id: %w", i, err)
		}
		if int64(id) >= int64(maxShards) {
			return 0, nil, fmt.Errorf("shard: sub-answer shard id %d outside %d-shard map", id, maxShards)
		}
		if int(id) <= prev {
			return 0, nil, fmt.Errorf("shard: sub-answer shard ids not strictly ascending (%d after %d)", id, prev)
		}
		prev = int(id)
		kind, err := r.U8()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: sub-answer %d kind: %w", i, err)
		}
		body, err := r.Bytes()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: sub-answer %d payload: %w", i, err)
		}
		sub := Sub{Shard: int(id), Kind: kind}
		br := wire.NewBuffer(body)
		switch kind {
		case KindResults:
			cnt, err := br.U32()
			if err != nil {
				return 0, nil, fmt.Errorf("shard: shard %d result count: %w", id, err)
			}
			if cnt > maxQueriesPerShard {
				return 0, nil, fmt.Errorf("shard: shard %d declares %d results", id, cnt)
			}
			sub.Results = make([]*ph.Result, 0, wire.ClampCount(cnt, br.Remaining()/8))
			for j := uint32(0); j < cnt; j++ {
				res, err := wire.DecodeResult(br)
				if err != nil {
					return 0, nil, fmt.Errorf("shard: shard %d result %d: %w", id, j, err)
				}
				if err := checkPositions(res); err != nil {
					return 0, nil, fmt.Errorf("shard %d result %d: %w", id, j, err)
				}
				sub.Results = append(sub.Results, res)
			}
		case KindVerified:
			cnt, err := br.U32()
			if err != nil {
				return 0, nil, fmt.Errorf("shard: shard %d verified count: %w", id, err)
			}
			if cnt > maxQueriesPerShard {
				return 0, nil, fmt.Errorf("shard: shard %d declares %d verified results", id, cnt)
			}
			sub.Verified = make([]*authindex.VerifiedResult, 0, wire.ClampCount(cnt, br.Remaining()/8))
			for j := uint32(0); j < cnt; j++ {
				vr, err := authindex.DecodeVerifiedResult(br)
				if err != nil {
					return 0, nil, fmt.Errorf("shard: shard %d verified result %d: %w", id, j, err)
				}
				if err := checkPositions(vr.Result); err != nil {
					return 0, nil, fmt.Errorf("shard %d verified result %d: %w", id, j, err)
				}
				sub.Verified = append(sub.Verified, vr)
			}
		case KindConj:
			resp, err := query.DecodeResponse(br)
			if err != nil {
				return 0, nil, fmt.Errorf("shard: shard %d conjunctive response: %w", id, err)
			}
			if resp.Result != nil {
				if err := checkPositions(resp.Result); err != nil {
					return 0, nil, fmt.Errorf("shard %d conjunction: %w", id, err)
				}
			}
			if resp.Verified != nil && resp.Verified.Result != nil {
				if err := checkPositions(resp.Verified.Result); err != nil {
					return 0, nil, fmt.Errorf("shard %d verified conjunction: %w", id, err)
				}
			}
			sub.Conj = resp
		case KindTable:
			t, err := wire.DecodeTable(br)
			if err != nil {
				return 0, nil, fmt.Errorf("shard: shard %d partition: %w", id, err)
			}
			sub.Table = t
		default:
			return 0, nil, fmt.Errorf("shard: shard %d sub-answer has unknown kind %#x", id, kind)
		}
		if br.Remaining() != 0 {
			return 0, nil, fmt.Errorf("shard: shard %d sub-answer has %d trailing bytes", id, br.Remaining())
		}
		subs = append(subs, sub)
	}
	if r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("shard: response has %d trailing bytes", r.Remaining())
	}
	return mapVersion, subs, nil
}

// EncodeAcks serialises a RespInsertedShard payload: the partition map
// version and one placement ack per shard that received tuples, in
// ascending shard order.
func EncodeAcks(dst []byte, mapVersion uint64, acks []Ack) []byte {
	dst = wire.AppendU64(dst, mapVersion)
	dst = wire.AppendU32(dst, uint32(len(acks)))
	for _, a := range acks {
		dst = wire.AppendU32(dst, uint32(a.Shard))
		dst = wire.AppendU32(dst, uint32(a.Base))
		dst = wire.AppendU32(dst, uint32(a.Count))
		dst = wire.AppendU64(dst, a.Version)
	}
	return dst
}

// DecodeAcks parses a RespInsertedShard payload; shard ids must be
// strictly ascending and inside the map.
func DecodeAcks(payload []byte, maxShards int) (mapVersion uint64, acks []Ack, err error) {
	r := wire.NewBuffer(payload)
	if mapVersion, err = r.U64(); err != nil {
		return 0, nil, fmt.Errorf("shard: ack map version: %w", err)
	}
	n, err := r.U32()
	if err != nil {
		return 0, nil, fmt.Errorf("shard: ack shard count: %w", err)
	}
	if int64(n) > int64(maxShards) {
		return 0, nil, fmt.Errorf("shard: acks declare %d shards, partition map has %d", n, maxShards)
	}
	acks = make([]Ack, 0, wire.ClampCount(n, r.Remaining()/20))
	prev := -1
	for i := uint32(0); i < n; i++ {
		id, err := r.U32()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: ack %d shard id: %w", i, err)
		}
		if int64(id) >= int64(maxShards) {
			return 0, nil, fmt.Errorf("shard: ack shard id %d outside %d-shard map", id, maxShards)
		}
		if int(id) <= prev {
			return 0, nil, fmt.Errorf("shard: ack shard ids not strictly ascending (%d after %d)", id, prev)
		}
		prev = int(id)
		base, err := r.U32()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: ack %d base: %w", i, err)
		}
		count, err := r.U32()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: ack %d count: %w", i, err)
		}
		version, err := r.U64()
		if err != nil {
			return 0, nil, fmt.Errorf("shard: ack %d version: %w", i, err)
		}
		acks = append(acks, Ack{Shard: int(id), Base: int(base), Count: int(count), Version: version})
	}
	if r.Remaining() != 0 {
		return 0, nil, fmt.Errorf("shard: acks have %d trailing bytes", r.Remaining())
	}
	return mapVersion, acks, nil
}
