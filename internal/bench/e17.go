package bench

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// countingConn wraps a net.Conn and tallies bytes in both directions —
// the client's view of bytes-over-wire.
type countingConn struct {
	net.Conn
	bytes *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.bytes.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.bytes.Add(int64(n))
	return n, err
}

// e17Schema is a two-column relation engineered for the conjunctive
// gate: grp splits the table ~50/50, code takes ~200 distinct values
// (~0.5% selectivity each).
func e17Schema() *relation.Schema {
	return relation.MustSchema("pairs",
		relation.Column{Name: "grp", Type: relation.TypeString, Width: 1},
		relation.Column{Name: "code", Type: relation.TypeString, Width: 4},
	)
}

// e17Table draws n tuples over the E17 schema.
func e17Table(n int, seed int64) (*relation.Table, error) {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable(e17Schema())
	for i := 0; i < n; i++ {
		grp := "A"
		if rng.Intn(2) == 1 {
			grp = "B"
		}
		code := fmt.Sprintf("c%03d", rng.Intn(200))
		if err := t.Insert(relation.Tuple{relation.String(grp), relation.String(code)}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RunE17 regenerates experiment E17: the conjunctive pushdown. On a
// 2-conjunct query whose predicates match ~50% and ~0.5% of a ≥10k-tuple
// table, it measures bytes-over-wire and end-to-end latency of
//
//   - the legacy path: one CmdQueryBatch shipping every conjunct's full
//     match set, decryption and relation.Intersect client-side
//     (DB.SelectConjLegacy — what every conjunctive query did before the
//     planner); against
//   - the pushdown path: one CmdQueryConj, the server's
//     selectivity-ordered planner narrowing survivors, only the
//     intersection shipped (DB.SelectConj).
//
// Both run against the same live server over an in-memory pipe with a
// byte counter on the client side, both warmed once (the server's
// result cache serves both paths alike), and a built-in gate requires
// the answers byte-identical to each other and to a plaintext
// evaluation — and both improvements ≥5x.
func RunE17(tuples int, seed int64) (*Table, error) {
	if tuples < 10000 {
		// The acceptance gate is specified at ≥10k tuples; smaller runs
		// would overstate the constant factors.
		tuples = 10000
	}
	t := &Table{
		ID: "E17",
		Title: fmt.Sprintf("conjunctive pushdown: planner vs client-side intersection (table: %d tuples, ~50%% ∧ ~0.5%%)",
			tuples),
		Header: []string{"path", "unit", "ns/op", "bytes/op", "allocs/op"},
		Notes: []string{
			"'legacy' ships every conjunct's full match set (CmdQueryBatch) and intersects after decryption — transfer and client CPU scale with the LEAST selective conjunct",
			"'pushdown' plans by estimated selectivity server-side (CmdQueryConj) and ships only the intersection",
			"both paths measured warm against the same server: the result cache accelerates legacy and pushdown alike, so the gap is pure transfer+decrypt+intersect",
		},
	}

	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	table, err := e17Table(tuples, seed)
	if err != nil {
		return nil, err
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		return nil, err
	}

	store := storage.NewMemory()
	srv := server.New(store, nil)
	cliSide, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	var onWire atomic.Int64
	conn := client.NewConn(countingConn{Conn: cliSide, bytes: &onWire})
	defer conn.Close()
	db := client.NewDB(conn, scheme, "pairs")
	if err := db.CreateTable(table); err != nil {
		return nil, err
	}
	db.PinRoot(nil, 0) // measure the plain paths; E16 covers verification

	conj := []relation.Eq{
		{Column: "grp", Value: relation.String("A")},
		{Column: "code", Value: relation.String("c007")},
	}

	// Plaintext reference and warm-up of both protocol paths.
	want, err := relation.Select(table, relation.And{Preds: []relation.Pred{conj[0], conj[1]}})
	if err != nil {
		return nil, err
	}
	legacyOut, err := db.SelectConjLegacy(conj)
	if err != nil {
		return nil, err
	}
	pushOut, err := db.SelectConj(conj)
	if err != nil {
		return nil, err
	}
	if legacyOut.Sorted().String() != pushOut.Sorted().String() {
		return nil, fmt.Errorf("bench: e17 gate: pushdown result differs from legacy intersection")
	}
	if pushOut.Sorted().String() != want.Sorted().String() {
		return nil, fmt.Errorf("bench: e17 gate: pushdown result differs from plaintext evaluation (%d vs %d tuples)",
			pushOut.Len(), want.Len())
	}

	type side struct {
		label string
		run   func() error
	}
	sides := []side{
		{"legacy: SelectMany + client Intersect", func() error {
			_, err := db.SelectConjLegacy(conj)
			return err
		}},
		{"pushdown: CmdQueryConj planner", func() error {
			_, err := db.SelectConj(conj)
			return err
		}},
	}
	var nsPerOp [2]float64
	var bytesPerOp [2]float64
	for i, s := range sides {
		start := onWire.Load()
		var ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if err := s.run(); err != nil {
					b.Fatal(err)
				}
			}
			atomic.AddInt64(&ops, int64(b.N))
		})
		total := onWire.Load() - start
		bytesPerOp[i] = float64(total) / float64(ops)
		nsPerOp[i] = float64(r.NsPerOp())
		t.AddRow(s.label, "per conj query",
			fmt.Sprintf("%d", r.NsPerOp()),
			fmt.Sprintf("%.0f", bytesPerOp[i]),
			fmt.Sprintf("%d", r.AllocsPerOp()))
	}

	latencyX := nsPerOp[0] / nsPerOp[1]
	bytesX := bytesPerOp[0] / bytesPerOp[1]
	t.Notes = append(t.Notes, fmt.Sprintf(
		"pushdown vs legacy: %.1fx lower end-to-end latency, %.1fx fewer bytes over the wire (%d matching tuples shipped instead of every conjunct's match set)",
		latencyX, bytesX, pushOut.Len()))
	if latencyX < 5 || bytesX < 5 {
		return nil, fmt.Errorf("bench: e17 gate: improvements below 5x (latency %.2fx, bytes %.2fx)", latencyX, bytesX)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"correctness gate: pushdown, legacy intersection and plaintext σ∧σ evaluation all agree (%d tuples); ≥5x gate passed",
		pushOut.Len()))
	return t, nil
}
