package relation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary encoding of schemas, values, tuples and tables. The format is a
// compact length-prefixed layout used by three consumers: the comparator
// schemes (which seal whole encoded tuples with an AEAD), the wire protocol
// (client/server), and the storage log.
//
// Layout (all integers big-endian):
//
//	value : type:u8 | len:u32 | payload        (payload = raw string / decimal)
//	tuple : nvals:u16 | value*
//	column: nameLen:u16 | name | type:u8 | width:u32
//	schema: nameLen:u16 | name | ncols:u16 | column*
//	table : schema | ntuples:u32 | tuple*

// AppendValue appends the binary encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Type()))
	enc := v.Encode()
	var len4 [4]byte
	binary.BigEndian.PutUint32(len4[:], uint32(len(enc)))
	dst = append(dst, len4[:]...)
	return append(dst, enc...)
}

// readValue decodes one value from r.
func readValue(r *bytes.Reader) (Value, error) {
	tb, err := r.ReadByte()
	if err != nil {
		return Value{}, fmt.Errorf("relation: decoding value type: %w", err)
	}
	var len4 [4]byte
	if _, err := io.ReadFull(r, len4[:]); err != nil {
		return Value{}, fmt.Errorf("relation: decoding value length: %w", err)
	}
	n := binary.BigEndian.Uint32(len4[:])
	if uint64(n) > uint64(r.Len()) {
		return Value{}, fmt.Errorf("relation: value length %d exceeds remaining input %d", n, r.Len())
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Value{}, fmt.Errorf("relation: decoding value payload: %w", err)
	}
	switch Type(tb) {
	case TypeString:
		return String(string(payload)), nil
	case TypeInt:
		var i int64
		if _, err := fmt.Sscanf(string(payload), "%d", &i); err != nil {
			return Value{}, fmt.Errorf("relation: decoding int payload %q: %w", payload, err)
		}
		return Int(i), nil
	default:
		return Value{}, fmt.Errorf("relation: unknown value type %d", tb)
	}
}

// EncodeTuple returns the binary encoding of a tuple.
func EncodeTuple(t Tuple) []byte {
	var dst []byte
	var n2 [2]byte
	binary.BigEndian.PutUint16(n2[:], uint16(len(t)))
	dst = append(dst, n2[:]...)
	for _, v := range t {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeTuple parses a tuple from its binary encoding.
func DecodeTuple(b []byte) (Tuple, error) {
	r := bytes.NewReader(b)
	t, err := readTuple(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("relation: %d trailing bytes after tuple", r.Len())
	}
	return t, nil
}

func readTuple(r *bytes.Reader) (Tuple, error) {
	var n2 [2]byte
	if _, err := io.ReadFull(r, n2[:]); err != nil {
		return nil, fmt.Errorf("relation: decoding tuple arity: %w", err)
	}
	n := binary.BigEndian.Uint16(n2[:])
	t := make(Tuple, n)
	for i := range t {
		v, err := readValue(r)
		if err != nil {
			return nil, fmt.Errorf("relation: decoding tuple value %d: %w", i, err)
		}
		t[i] = v
	}
	return t, nil
}

// EncodeSchema returns the binary encoding of a schema.
func EncodeSchema(s *Schema) []byte {
	var dst []byte
	dst = appendString16(dst, s.Name)
	var n2 [2]byte
	binary.BigEndian.PutUint16(n2[:], uint16(len(s.Columns)))
	dst = append(dst, n2[:]...)
	for _, c := range s.Columns {
		dst = appendString16(dst, c.Name)
		dst = append(dst, byte(c.Type))
		var w4 [4]byte
		binary.BigEndian.PutUint32(w4[:], uint32(c.Width))
		dst = append(dst, w4[:]...)
	}
	return dst
}

// DecodeSchema parses a schema from its binary encoding.
func DecodeSchema(b []byte) (*Schema, error) {
	r := bytes.NewReader(b)
	s, err := readSchema(r)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("relation: %d trailing bytes after schema", r.Len())
	}
	return s, nil
}

func readSchema(r *bytes.Reader) (*Schema, error) {
	name, err := readString16(r)
	if err != nil {
		return nil, fmt.Errorf("relation: decoding schema name: %w", err)
	}
	var n2 [2]byte
	if _, err := io.ReadFull(r, n2[:]); err != nil {
		return nil, fmt.Errorf("relation: decoding column count: %w", err)
	}
	n := binary.BigEndian.Uint16(n2[:])
	cols := make([]Column, n)
	for i := range cols {
		cname, err := readString16(r)
		if err != nil {
			return nil, fmt.Errorf("relation: decoding column %d name: %w", i, err)
		}
		tb, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("relation: decoding column %d type: %w", i, err)
		}
		var w4 [4]byte
		if _, err := io.ReadFull(r, w4[:]); err != nil {
			return nil, fmt.Errorf("relation: decoding column %d width: %w", i, err)
		}
		cols[i] = Column{Name: cname, Type: Type(tb), Width: int(binary.BigEndian.Uint32(w4[:]))}
	}
	return NewSchema(name, cols...)
}

// EncodeTable returns the binary encoding of a table (schema + tuples).
func EncodeTable(t *Table) []byte {
	dst := EncodeSchema(t.Schema())
	var n4 [4]byte
	binary.BigEndian.PutUint32(n4[:], uint32(t.Len()))
	dst = append(dst, n4[:]...)
	for _, tp := range t.Tuples() {
		dst = append(dst, EncodeTuple(tp)...)
	}
	return dst
}

// DecodeTable parses a table from its binary encoding.
func DecodeTable(b []byte) (*Table, error) {
	r := bytes.NewReader(b)
	s, err := readSchema(r)
	if err != nil {
		return nil, err
	}
	var n4 [4]byte
	if _, err := io.ReadFull(r, n4[:]); err != nil {
		return nil, fmt.Errorf("relation: decoding tuple count: %w", err)
	}
	n := binary.BigEndian.Uint32(n4[:])
	t := NewTable(s)
	for i := uint32(0); i < n; i++ {
		tp, err := readTuple(r)
		if err != nil {
			return nil, fmt.Errorf("relation: decoding tuple %d: %w", i, err)
		}
		if err := t.Insert(tp); err != nil {
			return nil, err
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("relation: %d trailing bytes after table", r.Len())
	}
	return t, nil
}

func appendString16(dst []byte, s string) []byte {
	var n2 [2]byte
	binary.BigEndian.PutUint16(n2[:], uint16(len(s)))
	dst = append(dst, n2[:]...)
	return append(dst, s...)
}

func readString16(r *bytes.Reader) (string, error) {
	var n2 [2]byte
	if _, err := io.ReadFull(r, n2[:]); err != nil {
		return "", err
	}
	n := binary.BigEndian.Uint16(n2[:])
	if int(n) > r.Len() {
		return "", fmt.Errorf("relation: string length %d exceeds remaining input %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
