package attacks

import (
	"fmt"
	"math/rand"

	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
)

// Theorem21 is the generic adversary realising the paper's Theorem 2.1:
// *any* database PH (K, E, Eq, D) is insecure in the sense of Definition 2.1
// as soon as q > 0 — including the paper's own provably (q = 0) secure
// construction.
//
// Strategy: the two challenge tables hold n tuples each, all sharing the
// same value in some column — value d in T0, value d' ≠ d in T1. One
// encrypted query for σ_col:d (observed from Alex in passive mode, or
// obtained from the oracle in active mode) is evaluated against the
// challenge ciphertext: by the homomorphic property its result covers
// (essentially) the whole table iff the challenge encrypts T0. A result
// covering at least half the table ⇒ guess 0, else guess 1. False positives
// only help the wrong table reach a handful of hits, never half.
type Theorem21 struct {
	// Rows is the challenge table cardinality n (default 32).
	Rows int
}

// theorem21Schema is the single-column schema the adversary plays on.
func theorem21Schema() *relation.Schema {
	return relation.MustSchema("t",
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 8},
	)
}

// Theorem21Query is the query whose encryption the adversary needs: it
// selects the value shared by every tuple of T0. Pass it as Alex's issued
// query when running the passive variant.
func Theorem21Query() relation.Eq {
	return relation.Eq{Column: "dept", Value: relation.String("HR")}
}

// Name implements games.Adversary.
func (a Theorem21) Name() string { return "theorem-2.1 generic" }

// rows returns the configured cardinality.
func (a Theorem21) rows() int {
	if a.Rows > 0 {
		return a.Rows
	}
	return 32
}

// Choose implements games.Adversary: T0 is all-"HR", T1 is all-"IT".
func (a Theorem21) Choose(*rand.Rand) (*relation.Table, *relation.Table, error) {
	s := theorem21Schema()
	t0 := relation.NewTable(s)
	t1 := relation.NewTable(s)
	for i := 0; i < a.rows(); i++ {
		t0.MustInsert(relation.String("HR"))
		t1.MustInsert(relation.String("IT"))
	}
	return t0, t1, nil
}

// Guess implements games.Adversary.
func (a Theorem21) Guess(rng *rand.Rand, tr *games.Transcript) (int, error) {
	var res *ph.Result
	switch {
	case tr.Oracle != nil:
		// Active mode: ask the oracle for Eq(σ_dept:HR) and evaluate it
		// ourselves via the homomorphic property.
		eq, err := tr.Oracle(Theorem21Query())
		if err != nil {
			return 0, fmt.Errorf("theorem21: oracle: %w", err)
		}
		res, err = tr.Apply(eq)
		if err != nil {
			return 0, fmt.Errorf("theorem21: applying oracle query: %w", err)
		}
	case len(tr.Issued) > 0:
		// Passive mode: use the first query Alex issued (the experiment
		// arranges for it to be σ_dept:HR).
		res = tr.Issued[0].Result
	default:
		// q = 0: Theorem 2.1 does not apply; nothing to go on.
		return rng.Intn(2), nil
	}
	if len(res.Positions)*2 >= len(tr.Ciphertext.Tuples) {
		return 0, nil
	}
	return 1, nil
}

var _ games.Adversary = Theorem21{}
