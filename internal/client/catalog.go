package client

import (
	"fmt"
	"sort"

	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/sqlmini"
)

// Catalog manages several outsourced tables over one connection, routing
// SQL statements to the right table's scheme by the FROM clause. Like Conn,
// a Catalog is not safe for concurrent use.
type Catalog struct {
	conn    *Conn
	cluster Cluster
	tables  map[string]*DB
}

// NewCatalog creates an empty catalog over the connection.
func NewCatalog(conn *Conn) *Catalog {
	return &Catalog{conn: conn, tables: make(map[string]*DB)}
}

// NewShardedCatalog creates an empty catalog over a sharded serving
// tier: every attached table routes through the cluster's scatter-gather
// instead of a single connection.
func NewShardedCatalog(cl Cluster) *Catalog {
	return &Catalog{cluster: cl, tables: make(map[string]*DB)}
}

// Attach registers a scheme for a remote table name and returns its DB
// handle. Attaching an already attached name replaces the handle (e.g.
// after a key rotation).
func (c *Catalog) Attach(remote string, scheme ph.Scheme) (*DB, error) {
	if remote == "" {
		return nil, fmt.Errorf("client: catalog table name must not be empty")
	}
	var db *DB
	if c.cluster != nil {
		db = NewShardedDB(c.cluster, scheme, remote)
	} else {
		db = NewDB(c.conn, scheme, remote)
	}
	c.tables[remote] = db
	return db, nil
}

// DB returns the handle for a remote table name.
func (c *Catalog) DB(remote string) (*DB, error) {
	db, ok := c.tables[remote]
	if !ok {
		return nil, fmt.Errorf("client: no table %q attached (have %v)", remote, c.Names())
	}
	return db, nil
}

// Names lists the attached remote table names, sorted.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Query parses the statement, resolves the FROM clause against attached
// tables (by remote name first, then by schema name), and executes it with
// that table's scheme.
func (c *Catalog) Query(sql string) (*relation.Table, error) {
	db, err := c.route(sql)
	if err != nil {
		return nil, err
	}
	return db.Query(sql)
}

// Explain routes the statement like Query but returns the server's plan
// for it instead of executing it (see DB.Explain).
func (c *Catalog) Explain(sql string) (string, error) {
	db, err := c.route(sql)
	if err != nil {
		return "", err
	}
	return db.Explain(sql)
}

// route resolves a statement's FROM clause to an attached DB, by remote
// name first, then by schema name.
func (c *Catalog) route(sql string) (*DB, error) {
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	if db, ok := c.tables[q.Table]; ok {
		return db, nil
	}
	// Fall back to schema-name lookup so applications can use logical
	// relation names that differ from the remote storage name.
	var match *DB
	for _, db := range c.tables {
		if db.Scheme().Schema().Name == q.Table {
			if match != nil {
				return nil, fmt.Errorf("client: schema name %q is ambiguous across attached tables", q.Table)
			}
			match = db
		}
	}
	if match == nil {
		return nil, fmt.Errorf("client: no attached table serves %q (have %v)", q.Table, c.Names())
	}
	return match, nil
}
