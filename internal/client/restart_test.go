package client

import (
	"net"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/storage"
)

// TestDurableRestartEndToEnd exercises the whole stack across a simulated
// crash: a durable server stores encrypted data; the server process and
// client are torn down; a fresh server replays the log; a fresh client,
// rebuilt from the same passphrase-derived config and the persisted root,
// queries and verifies as if nothing happened.
func TestDurableRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "store.log")
	master := crypto.KeyFromBytes([]byte("restart-pass"))
	tc := TableConfig{Remote: "emp", Scheme: "swp-ph", Schema: SchemaConfigOf(empSchema())}

	startServer := func() (*server.Server, net.Listener, *storage.Store) {
		st, err := storage.Open(logPath)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(st, nil)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l, st
	}

	// --- First life: upload data, remember the root. -------------------
	srv1, l1, st1 := startServer()
	scheme1, err := tc.BuildScheme(master)
	if err != nil {
		t.Fatal(err)
	}
	conn1, err := Dial(l1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	db1 := NewDB(conn1, scheme1, "emp")
	if err := db1.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	root, tuples := db1.Root()
	if root == nil || tuples != 3 {
		t.Fatalf("no root pinned after create (%v, %d)", root, tuples)
	}
	conn1.Close()
	srv1.Close()
	st1.Close()

	// --- Second life: fresh everything but the log, passphrase, root. --
	srv2, l2, st2 := startServer()
	defer func() {
		srv2.Close()
		st2.Close()
	}()
	scheme2, err := tc.BuildScheme(master)
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := Dial(l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	db2 := NewDB(conn2, scheme2, "emp")
	db2.PinRoot(root, tuples)

	got, err := db2.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("post-restart select returned %d tuples, want 2", got.Len())
	}

	// Tampering during the "downtime" must be caught by the persisted
	// root: corrupt the stored ciphertext and re-query. Flipping the
	// tuple IDs leaves the trapdoor search intact (so the query still
	// returns tuples to verify) while breaking every leaf hash.
	ct, err := st2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct.Tuples {
		ct.Tuples[i].ID[0] ^= 1
	}
	if err := st2.Put("emp", ct); err != nil {
		t.Fatal(err)
	}
	_, err = db2.Select(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err == nil || !strings.Contains(err.Error(), "verification") {
		t.Fatalf("tampering after restart not detected: %v", err)
	}
}

// TestPinRootDisable checks that un-pinning returns the client to
// unverified mode.
func TestPinRootDisable(t *testing.T) {
	conn := startPipe(t, storage.NewMemory())
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	db.PinRoot(nil, 0)
	if root, _ := db.Root(); len(root) != 0 {
		t.Fatal("root still pinned after disable")
	}
	if _, err := db.Select(relation.Eq{Column: "dept", Value: relation.String("HR")}); err != nil {
		t.Fatalf("unverified select failed: %v", err)
	}
}
