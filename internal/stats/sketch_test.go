package stats

import (
	"fmt"
	"sync"
	"testing"
)

func TestQuerySketchEstimates(t *testing.T) {
	s := NewQuerySketch()
	d1 := TokenDigest("swp-ph", []byte("token-1"))
	d2 := TokenDigest("swp-ph", []byte("token-2"))

	// Unobserved token, empty length bucket: the default prior.
	if sel, known := s.Estimate(d1, 8); known || sel != defaultPrior {
		t.Fatalf("fresh sketch: got (%v, %v), want (%v, false)", sel, known, defaultPrior)
	}

	s.Observe(d1, 8, 5, 1000)
	sel, known := s.Estimate(d1, 8)
	if !known || sel != 0.005 {
		t.Fatalf("observed token: got (%v, %v), want (0.005, true)", sel, known)
	}
	// Sibling token of the same length inherits the bucket prior.
	sel, known = s.Estimate(d2, 8)
	if known || sel != 0.005 {
		t.Fatalf("sibling token: got (%v, %v), want bucket prior 0.005", sel, known)
	}
	// A different length bucket stays at the default prior.
	if sel, _ := s.Estimate(d2, 16); sel != defaultPrior {
		t.Fatalf("other length bucket: got %v, want %v", sel, defaultPrior)
	}

	// Aggregation: a second observation refines the same token.
	s.Observe(d1, 8, 15, 1000)
	if sel, _ := s.Estimate(d1, 8); sel != 0.01 {
		t.Fatalf("aggregated estimate: got %v, want 0.01", sel)
	}
}

func TestQuerySketchRejectsBadObservations(t *testing.T) {
	s := NewQuerySketch()
	d := TokenDigest("x", []byte("t"))
	s.Observe(d, 4, -1, 10)
	s.Observe(d, 4, 5, 0)
	s.Observe(d, 4, 11, 10)
	if _, known := s.Estimate(d, 4); known {
		t.Fatal("invalid observations must not register")
	}
}

func TestQuerySketchEvictionBounded(t *testing.T) {
	s := NewQuerySketch()
	for i := 0; i < maxTrackedTokens+100; i++ {
		s.Observe(TokenDigest("x", []byte(fmt.Sprintf("t%d", i))), 4, 1, 10)
	}
	if got := len(s.byToken); got > maxTrackedTokens {
		t.Fatalf("sketch tracks %d tokens, cap is %d", got, maxTrackedTokens)
	}
	// The newest token survived; the oldest was evicted back to the prior.
	newest := TokenDigest("x", []byte(fmt.Sprintf("t%d", maxTrackedTokens+99)))
	if _, known := s.Estimate(newest, 4); !known {
		t.Fatal("newest token evicted")
	}
	oldest := TokenDigest("x", []byte("t0"))
	if _, known := s.Estimate(oldest, 4); known {
		t.Fatal("oldest token still tracked past the cap")
	}
}

func TestQuerySketchConcurrent(t *testing.T) {
	s := NewQuerySketch()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := TokenDigest("x", []byte{byte(g)})
			for i := 0; i < 200; i++ {
				s.Observe(d, 4, 1, 100)
				s.Estimate(d, 4)
				s.Prior(4)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		d := TokenDigest("x", []byte{byte(g)})
		if sel, known := s.Estimate(d, 4); !known || sel != 0.01 {
			t.Fatalf("goroutine %d estimate: got (%v, %v), want (0.01, true)", g, sel, known)
		}
	}
}
