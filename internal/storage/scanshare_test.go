package storage

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/scanshare"
	"repro/internal/workload"
)

// shareFixture builds an encrypted employees table plus the scheme to
// mint trapdoors with.
type shareFixture struct {
	scheme *core.PH
	et     *ph.EncryptedTable
}

func newShareFixture(t testing.TB, tuples int, seed int64) *shareFixture {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	et, err := scheme.EncryptTable(table)
	if err != nil {
		t.Fatal(err)
	}
	return &shareFixture{scheme: scheme, et: et}
}

func (f *shareFixture) query(t testing.TB, col, val string) *ph.EncryptedQuery {
	t.Helper()
	q, err := f.scheme.EncryptQuery(relation.Eq{Column: col, Value: relation.String(val)})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func serialGroundTruth(t testing.TB, et *ph.EncryptedTable, q *ph.EncryptedQuery) []int {
	t.Helper()
	res, err := core.EvaluateSerial(et, q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Positions
}

// TestQuerySharedScanMatchesSerial drives repeated cold queries through
// the store's shared-scan miss path (cache disabled so every query is a
// miss) and checks each answer against the serial evaluator.
func TestQuerySharedScanMatchesSerial(t *testing.T) {
	f := newShareFixture(t, 2000, 11)
	s := NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", f.et); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, dept := range workload.Departments {
			wg.Add(1)
			go func(dept string) {
				defer wg.Done()
				q := f.query(t, "dept", dept)
				res, err := s.Query("emp", q)
				if err != nil {
					t.Errorf("Query(%s): %v", dept, err)
					return
				}
				want := serialGroundTruth(t, f.et, q)
				if !reflect.DeepEqual(res.Positions, want) {
					t.Errorf("Query(%s): %d positions, serial says %d", dept, len(res.Positions), len(want))
				}
			}(dept)
		}
		wg.Wait()
	}
	if st := s.ShareStats(); st.Riders+st.Attached+st.Inline == 0 {
		t.Fatalf("share stats = %+v, miss path never reached the sharer", st)
	}
}

// stripedEmployees builds a table where dept == "FIN" exactly at
// positions that are multiples of stride, so any snapshot prefix has a
// predictable match set.
func stripedEmployees(t testing.TB, n, stride int) (*relation.Table, error) {
	t.Helper()
	tab := relation.NewTable(workload.EmployeeSchema())
	for i := 0; i < n; i++ {
		dept := "OPS"
		if i%stride == 0 {
			dept = "FIN"
		}
		err := tab.Insert(relation.Tuple{
			relation.String(fmt.Sprintf("E%07d", i)),
			relation.String(dept),
			relation.Int(int64(1000 + i)),
		})
		if err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// TestSharedScanDuringAppends runs cold queries through the shared pass
// while the table is being appended to, under -race. The evaluator is
// deterministic and tuple-local, so the match set of any snapshot prefix
// of n tuples is exactly the full-table match set truncated below n —
// every answer must therefore be a prefix of the full-table serial scan,
// at least as long as the pre-storm prefix's. A torn answer (mixing two
// snapshot prefixes) or a stale cache writeback (tagged with a version
// whose tuples it did not scan) breaks that prefix structure.
func TestSharedScanDuringAppends(t *testing.T) {
	const (
		base   = 2048
		total  = 3072
		stride = 16
		batch  = 128
	)
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	table, err := stripedEmployees(t, total, stride)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	et, err := scheme.EncryptTable(table)
	if err != nil {
		t.Fatal(err)
	}
	s := NewMemory()
	head := &ph.EncryptedTable{SchemeID: et.SchemeID, Meta: et.Meta, Tuples: et.Tuples[:base]}
	if err := s.Put("emp", head); err != nil {
		t.Fatal(err)
	}
	q, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("FIN")})
	if err != nil {
		t.Fatal(err)
	}

	fullMatch := serialGroundTruth(t, et, q)
	atBase := 0
	for _, p := range fullMatch {
		if p < base {
			atBase++
		}
	}
	check := func(positions []int) error {
		n := len(positions)
		if n < atBase || n > len(fullMatch) {
			return fmt.Errorf("%d hits, want between %d and %d", n, atBase, len(fullMatch))
		}
		if !reflect.DeepEqual(positions, fullMatch[:n]) {
			return fmt.Errorf("answer is not a snapshot-prefix match set: mixes prefixes or stale writeback")
		}
		return nil
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query("emp", q)
				if err != nil {
					t.Error(err)
					return
				}
				if err := check(res.Positions); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for lo := base; lo < total; lo += batch {
		hi := min(lo+batch, total)
		if err := s.Append("emp", et.Tuples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Post-quiesce staleness probe: after all appends have landed, the
	// cache entry written back by whichever pass ran last must reconcile
	// (via hit or delta) to the full-table answer.
	res, err := s.Query("emp", q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Positions), len(fullMatch); got != want {
		t.Fatalf("post-quiesce query saw %d hits, want %d: stale cache writeback", got, want)
	}
	full, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if want := serialGroundTruth(t, full, q); !reflect.DeepEqual(res.Positions, want) {
		t.Fatal("post-quiesce query diverges from serial scan of the final table")
	}
}

// TestConjDriverRidesSharedPass checks that a cold conjunctive query's
// driver-conjunct full scan goes through the sharer, and that the
// answer matches the intersection of the serial per-conjunct scans.
func TestConjDriverRidesSharedPass(t *testing.T) {
	f := newShareFixture(t, 2000, 13)
	s := NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", f.et); err != nil {
		t.Fatal(err)
	}
	qs := []*ph.EncryptedQuery{
		f.query(t, "dept", "IT"),
		f.query(t, "name", "Alan001"),
	}
	res, _, err := s.QueryConj("emp", qs)
	if err != nil {
		t.Fatal(err)
	}
	inter := map[int]int{}
	for _, q := range qs {
		for _, p := range serialGroundTruth(t, f.et, q) {
			inter[p]++
		}
	}
	var want []int
	for p := 0; p < len(f.et.Tuples); p++ {
		if inter[p] == len(qs) {
			want = append(want, p)
		}
	}
	if len(res.Positions) != len(want) || (want != nil && !reflect.DeepEqual(res.Positions, want)) {
		t.Fatalf("conj positions = %v, want %v", res.Positions, want)
	}
	if st := s.ShareStats(); st.Riders == 0 {
		t.Fatalf("share stats = %+v, conj driver scan bypassed the sharer", st)
	}
}

// TestQueryVerifiedThroughSharer checks the verified-read path still
// answers correctly when its miss goes through the shared pass.
func TestQueryVerifiedThroughSharer(t *testing.T) {
	f := newShareFixture(t, 1500, 17)
	s := NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", f.et); err != nil {
		t.Fatal(err)
	}
	q := f.query(t, "dept", "SALES")
	vr, err := s.QueryVerified("emp", q)
	if err != nil {
		t.Fatal(err)
	}
	want := serialGroundTruth(t, f.et, q)
	if !reflect.DeepEqual(vr.Result.Positions, want) {
		t.Fatalf("verified positions diverge from serial (%d vs %d)", len(vr.Result.Positions), len(want))
	}
	if st := s.ShareStats(); st.Riders+st.Inline == 0 {
		t.Fatalf("share stats = %+v, verified miss bypassed the sharer", st)
	}
}

// TestForeignSchemeFallsBack checks a table the sharer cannot serve
// (unknown scheme) declines cleanly and surfaces the evaluator
// registry's error exactly as the unshared path would.
func TestForeignSchemeFallsBack(t *testing.T) {
	s := NewMemory()
	s.SetResultCache(nil)
	et := &ph.EncryptedTable{SchemeID: "no-such-scheme", Tuples: make([]ph.EncryptedTuple, 2000)}
	if err := s.Put("x", et); err != nil {
		t.Fatal(err)
	}
	q := &ph.EncryptedQuery{SchemeID: "no-such-scheme", Token: []byte{1}}
	if _, err := s.Query("x", q); err == nil {
		t.Fatal("query against unknown scheme succeeded")
	}
	if st := s.ShareStats(); st.Declined == 0 {
		t.Fatalf("share stats = %+v, want a declined scan", st)
	}
}

// TestSetSharerNilDisablesSharing pins the escape hatch: with the
// sharer removed, queries still answer via the per-query scan.
func TestSetSharerNilDisablesSharing(t *testing.T) {
	f := newShareFixture(t, 1500, 19)
	s := NewMemory()
	s.SetResultCache(nil)
	s.SetSharer(nil)
	if err := s.Put("emp", f.et); err != nil {
		t.Fatal(err)
	}
	q := f.query(t, "dept", "HR")
	res, err := s.Query("emp", q)
	if err != nil {
		t.Fatal(err)
	}
	want := serialGroundTruth(t, f.et, q)
	if !reflect.DeepEqual(res.Positions, want) {
		t.Fatal("unshared query diverges from serial")
	}
	if st := s.ShareStats(); st != (scanshare.Stats{}) {
		t.Fatalf("share stats = %+v after SetSharer(nil), want all zero", st)
	}
}
