package authindex

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ph"
	"repro/internal/wire"
)

func tableOf(n int) *ph.EncryptedTable {
	t := &ph.EncryptedTable{SchemeID: "x"}
	for i := 0; i < n; i++ {
		t.Tuples = append(t.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i), byte(i >> 8)},
			Blob:  []byte{0xB0, byte(i)},
			Words: [][]byte{{0xA0, byte(i)}, {0xA1, byte(i)}},
		})
	}
	return t
}

func TestAllPositionsVerifyAllSizes(t *testing.T) {
	// Odd and even leaf counts exercise the promoted-node logic.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33} {
		tab := tableOf(n)
		tree := Build(tab)
		root := tree.Root()
		positions := make([]int, n)
		for i := range positions {
			positions[i] = i
		}
		proofs, err := tree.Prove(positions)
		if err != nil {
			t.Fatalf("n=%d: Prove: %v", n, err)
		}
		for i, p := range proofs {
			if err := Verify(root, n, tab.Tuples[i], p); err != nil {
				t.Fatalf("n=%d position %d: %v", n, i, err)
			}
		}
	}
}

func TestTamperedTupleFails(t *testing.T) {
	tab := tableOf(10)
	tree := Build(tab)
	root := tree.Root()
	proofs, err := tree.Prove([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate each field in turn; all must be caught.
	mutations := []func(*ph.EncryptedTuple){
		func(tp *ph.EncryptedTuple) { tp.ID[0] ^= 1 },
		func(tp *ph.EncryptedTuple) { tp.Blob[0] ^= 1 },
		func(tp *ph.EncryptedTuple) { tp.Words[0][0] ^= 1 },
		func(tp *ph.EncryptedTuple) { tp.Words = tp.Words[:1] },
		func(tp *ph.EncryptedTuple) { tp.Words = append(tp.Words, []byte{9}) },
	}
	for i, mutate := range mutations {
		cp := tab.Clone().Tuples[4]
		mutate(&cp)
		if err := Verify(root, 10, cp, proofs[0]); err == nil {
			t.Fatalf("mutation %d not detected", i)
		}
	}
}

func TestWrongPositionFails(t *testing.T) {
	tab := tableOf(8)
	tree := Build(tab)
	root := tree.Root()
	proofs, _ := tree.Prove([]int{2})
	// Using tuple 3 with tuple 2's proof must fail.
	if err := Verify(root, 8, tab.Tuples[3], proofs[0]); err == nil {
		t.Fatal("substituted tuple passed verification")
	}
	// Claiming a different position with the same proof must fail.
	p := proofs[0]
	p.Position = 3
	if err := Verify(root, 8, tab.Tuples[2], p); err == nil {
		t.Fatal("relocated proof passed verification")
	}
}

func TestWrongRootFails(t *testing.T) {
	tab := tableOf(5)
	tree := Build(tab)
	proofs, _ := tree.Prove([]int{0})
	badRoot := tree.Root()
	badRoot[0] ^= 1
	if err := Verify(badRoot, 5, tab.Tuples[0], proofs[0]); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestProofLengthChecks(t *testing.T) {
	tab := tableOf(8)
	tree := Build(tab)
	root := tree.Root()
	proofs, _ := tree.Prove([]int{0})
	short := Proof{Position: 0, Siblings: proofs[0].Siblings[:1]}
	if err := Verify(root, 8, tab.Tuples[0], short); err == nil {
		t.Fatal("short proof accepted")
	}
	long := Proof{Position: 0, Siblings: append(append([][]byte{}, proofs[0].Siblings...), make([]byte, HashSize))}
	if err := Verify(root, 8, tab.Tuples[0], long); err == nil {
		t.Fatal("over-long proof accepted")
	}
	bad := Proof{Position: 0, Siblings: [][]byte{{1, 2, 3}}}
	if err := Verify(root, 8, tab.Tuples[0], bad); err == nil {
		t.Fatal("malformed sibling accepted")
	}
}

func TestProveValidation(t *testing.T) {
	tree := Build(tableOf(3))
	if _, err := tree.Prove([]int{3}); err == nil {
		t.Fatal("out-of-range position accepted")
	}
	if _, err := tree.Prove([]int{-1}); err == nil {
		t.Fatal("negative position accepted")
	}
}

func TestVerifyPositionRange(t *testing.T) {
	tab := tableOf(4)
	tree := Build(tab)
	proofs, _ := tree.Prove([]int{0})
	if err := Verify(tree.Root(), 4, tab.Tuples[0], Proof{Position: 9, Siblings: proofs[0].Siblings}); err == nil {
		t.Fatal("position beyond leaf count accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	tree := Build(&ph.EncryptedTable{})
	if len(tree.Root()) != HashSize {
		t.Fatal("empty tree has no root")
	}
	if tree.LeafCount() != 1 {
		t.Fatalf("empty tree leaf count = %d", tree.LeafCount())
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := Build(tableOf(4)).Root()
	tab := tableOf(4)
	tab.Tuples[2].Blob[1] ^= 1
	b := Build(tab).Root()
	if bytes.Equal(a, b) {
		t.Fatal("root identical after content change")
	}
}

func TestLeafHashInjectiveAcrossFieldBoundaries(t *testing.T) {
	a := ph.EncryptedTuple{ID: []byte("ab"), Blob: []byte("c")}
	b := ph.EncryptedTuple{ID: []byte("a"), Blob: []byte("bc")}
	if bytes.Equal(LeafHash(a), LeafHash(b)) {
		t.Fatal("LeafHash not injective across ID/Blob boundary")
	}
	c := ph.EncryptedTuple{Words: [][]byte{[]byte("xy")}}
	d := ph.EncryptedTuple{Words: [][]byte{[]byte("x"), []byte("y")}}
	if bytes.Equal(LeafHash(c), LeafHash(d)) {
		t.Fatal("LeafHash not injective across word boundaries")
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	tree := Build(tableOf(9))
	in, err := tree.Prove([]int{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeProofs(wire.NewBuffer(EncodeProofs(nil, in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("proof count: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Position != in[i].Position || len(out[i].Siblings) != len(in[i].Siblings) {
			t.Fatalf("proof %d shape mismatch", i)
		}
		for j := range in[i].Siblings {
			if !bytes.Equal(out[i].Siblings[j], in[i].Siblings[j]) {
				t.Fatalf("proof %d sibling %d mismatch", i, j)
			}
		}
	}
}

func TestVerifyProperty(t *testing.T) {
	// Property: for random table sizes and positions, honest proofs
	// verify and a flipped leaf byte fails.
	f := func(sz uint8, posRaw uint8, flip uint8) bool {
		n := int(sz%40) + 1
		pos := int(posRaw) % n
		tab := tableOf(n)
		tree := Build(tab)
		proofs, err := tree.Prove([]int{pos})
		if err != nil {
			return false
		}
		if Verify(tree.Root(), n, tab.Tuples[pos], proofs[0]) != nil {
			return false
		}
		bad := tab.Clone().Tuples[pos]
		bad.ID[int(flip)%len(bad.ID)] ^= 1
		return Verify(tree.Root(), n, bad, proofs[0]) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
