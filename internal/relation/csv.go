package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV interchange for plaintext tables. The header row carries typed
// columns as "name:type[:width]"; when width is omitted it is inferred as
// the widest value in the file (at least 1). This is the import path for
// real data into the outsourcing client — everything stays client-side,
// the server only ever sees the encrypted form.
//
//	name:string:10,dept:string:5,salary:int:5
//	Montgomery,HR,7500
//	Ada,IT,9100

// ReadCSV parses a typed CSV stream into a table named tableName.
func ReadCSV(r io.Reader, tableName string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated against the header below
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has no header row")
	}
	header := records[0]
	type colSpec struct {
		name  string
		typ   Type
		width int // 0 = infer
	}
	specs := make([]colSpec, len(header))
	for i, h := range header {
		parts := strings.Split(strings.TrimSpace(h), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("relation: csv header %q is not name:type[:width]", h)
		}
		spec := colSpec{name: parts[0]}
		switch parts[1] {
		case "string":
			spec.typ = TypeString
		case "int":
			spec.typ = TypeInt
		default:
			return nil, fmt.Errorf("relation: csv header %q has unknown type %q", h, parts[1])
		}
		if len(parts) == 3 {
			w, err := strconv.Atoi(parts[2])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("relation: csv header %q has invalid width %q", h, parts[2])
			}
			spec.width = w
		}
		specs[i] = spec
	}
	// Infer missing widths from the data.
	for i := range specs {
		if specs[i].width > 0 {
			continue
		}
		w := 1
		for _, rec := range records[1:] {
			if i < len(rec) && len(rec[i]) > w {
				w = len(rec[i])
			}
		}
		specs[i].width = w
	}
	cols := make([]Column, len(specs))
	for i, s := range specs {
		cols[i] = Column{Name: s.name, Type: s.typ, Width: s.width}
	}
	schema, err := NewSchema(tableName, cols...)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for ri, rec := range records[1:] {
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("relation: csv row %d has %d fields, header has %d", ri+2, len(rec), len(cols))
		}
		tp := make(Tuple, len(rec))
		for i, field := range rec {
			switch cols[i].Type {
			case TypeInt:
				v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv row %d column %q: %w", ri+2, cols[i].Name, err)
				}
				tp[i] = Int(v)
			default:
				tp[i] = String(field)
			}
		}
		if err := t.Insert(tp); err != nil {
			return nil, fmt.Errorf("relation: csv row %d: %w", ri+2, err)
		}
	}
	return t, nil
}

// WriteCSV writes the table in the same typed-header format ReadCSV reads.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().NumColumns())
	for i, c := range t.Schema().Columns {
		header[i] = fmt.Sprintf("%s:%s:%d", c.Name, c.Type, c.Width)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: writing csv header: %w", err)
	}
	for _, tp := range t.Tuples() {
		rec := make([]string, len(tp))
		for i, v := range tp {
			rec[i] = v.Encode()
		}
		// encoding/csv writes a single empty field as a blank line, which
		// its reader then skips; force quotes so the row survives the
		// round trip.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("relation: flushing csv: %w", err)
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return fmt.Errorf("relation: writing csv row: %w", err)
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: writing csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("relation: flushing csv: %w", err)
	}
	return nil
}
