package gohph

import (
	"bytes"
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

func empSchema() *relation.Schema {
	return relation.MustSchema("emp",
		relation.Column{Name: "name", Type: relation.TypeString, Width: 10},
		relation.Column{Name: "dept", Type: relation.TypeString, Width: 5},
		relation.Column{Name: "salary", Type: relation.TypeInt, Width: 5},
	)
}

func empTable() *relation.Table {
	t := relation.NewTable(empSchema())
	t.MustInsert(relation.String("Montgomery"), relation.String("HR"), relation.Int(7500))
	t.MustInsert(relation.String("Ada"), relation.String("IT"), relation.Int(9100))
	t.MustInsert(relation.String("Grace"), relation.String("HR"), relation.Int(8800))
	t.MustInsert(relation.String("Alan"), relation.String("R&D"), relation.Int(7500))
	return t
}

func newScheme(t *testing.T, opts Options) *Scheme {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(key, empSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := newScheme(t, Options{})
	tab := empTable()
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(tab) {
		t.Fatal("round trip changed the table")
	}
}

func TestHomomorphicSelect(t *testing.T) {
	s := newScheme(t, Options{})
	tab := empTable()
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []relation.Eq{
		{Column: "name", Value: relation.String("Montgomery")},
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(7500)},
		{Column: "dept", Value: relation.String("NONE")},
	} {
		want, err := relation.Select(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := s.EncryptQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.DecryptResult(q, res)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("query %s: wrong filtered result", q)
		}
		if len(res.Tuples) < want.Len() {
			t.Errorf("query %s: server returned fewer tuples (%d) than true matches (%d) — false negative",
				q, len(res.Tuples), want.Len())
		}
	}
}

func TestFiltersAreSaltedPerDocument(t *testing.T) {
	// Identical tuples must produce different Bloom filters (the docID
	// salt), or the §1 equality attack would apply to the index.
	s := newScheme(t, Options{})
	tab := relation.NewTable(empSchema())
	for i := 0; i < 8; i++ {
		tab.MustInsert(relation.String("Same"), relation.String("HR"), relation.Int(1))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ct.Tuples); i++ {
		if bytes.Equal(ct.Tuples[0].Words[0], ct.Tuples[i].Words[0]) {
			t.Fatal("identical tuples produced identical filters")
		}
	}
}

func TestNoPlaintextInCiphertext(t *testing.T) {
	s := newScheme(t, Options{})
	ct, err := s.EncryptTable(empTable())
	if err != nil {
		t.Fatal(err)
	}
	for _, etp := range ct.Tuples {
		for _, plain := range []string{"Montgomery", "HR", "7500"} {
			if bytes.Contains(etp.Blob, []byte(plain)) || bytes.Contains(etp.Words[0], []byte(plain)) {
				t.Fatalf("plaintext %q visible in ciphertext", plain)
			}
		}
	}
}

func TestWrongKeyCannotSearchOrDecrypt(t *testing.T) {
	s1 := newScheme(t, Options{})
	s2 := newScheme(t, Options{})
	tab := empTable()
	ct, err := s1.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DecryptTable(ct); err == nil {
		t.Fatal("wrong key decrypted the table")
	}
	q := relation.Eq{Column: "dept", Value: relation.String("HR")}
	eq, err := s2.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	// A wrong-key trapdoor behaves like a random probe: with the default
	// FP rate it should essentially never match all 4 tuples.
	if len(res.Tuples) == tab.Len() {
		t.Fatal("wrong-key trapdoor matched every tuple")
	}
}

func TestFalsePositiveRateHonoured(t *testing.T) {
	// With a deliberately sloppy 10% FP target, probing a large table
	// with an absent value must produce false hits near that rate.
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(key, empSchema(), Options{FPRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(empSchema())
	for i := 0; i < 2000; i++ {
		tab.MustInsert(relation.String("P"), relation.String("HR"), relation.Int(int64(i)))
	}
	ct, err := s.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	q := relation.Eq{Column: "dept", Value: relation.String("NONE!")}
	eq, err := s.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(res.Tuples)) / float64(tab.Len())
	if rate > 0.3 {
		t.Fatalf("FP rate %v far above the 0.1 target", rate)
	}
	// And the client-side filter must remove them all.
	got, err := s.DecryptResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("filter let %d false positives through", got.Len())
	}
}

func TestMetaValidation(t *testing.T) {
	if _, _, err := decodeMeta(nil); err == nil {
		t.Fatal("nil meta accepted")
	}
	if _, _, err := decodeMeta(make([]byte, 6)); err == nil {
		t.Fatal("zero geometry accepted")
	}
	s := newScheme(t, Options{})
	ct, err := s.EncryptTable(empTable())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt trapdoor length must error.
	if _, err := Evaluate(ct, &ph.EncryptedQuery{SchemeID: SchemeID, Token: []byte{1, 2}}); err == nil {
		t.Fatal("short trapdoor accepted")
	}
	// Corrupt filter length must error, not panic.
	bad := ct.Clone()
	bad.Tuples[0].Words[0] = bad.Tuples[0].Words[0][:1]
	q, err := s.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(bad, q); err == nil {
		t.Fatal("corrupt filter accepted")
	}
}

func TestSchemaValidation(t *testing.T) {
	s := newScheme(t, Options{})
	other := relation.MustSchema("o", relation.Column{Name: "x", Type: relation.TypeInt, Width: 3})
	tab := relation.NewTable(other)
	tab.MustInsert(relation.Int(1))
	if _, err := s.EncryptTable(tab); err == nil {
		t.Fatal("foreign schema encrypted")
	}
	if _, err := s.EncryptQuery(relation.Eq{Column: "x", Value: relation.Int(1)}); err == nil {
		t.Fatal("foreign query encrypted")
	}
	key, _ := crypto.RandomKey()
	if _, err := New(key, empSchema(), Options{FPRate: 2}); err == nil {
		t.Fatal("absurd FP rate accepted")
	}
}
