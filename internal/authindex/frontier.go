package authindex

import (
	"repro/internal/ph"
)

// Frontier is the O(log n) append-only summary of a Merkle tree: the
// roots of the perfect subtrees in the binary decomposition of the leaf
// count, largest first (the "compact range" of Certificate Transparency
// folklore). Because the tree shape is the RFC 6962 split, the tree root
// is the right-to-left fold of these subtree roots under interiorHash.
//
// The client carries a Frontier instead of the whole tree: appending the
// leaf hashes of its own inserts advances the pinned root in O(log n)
// memory and O(1) amortised hashing per leaf, with no re-download of the
// table. A Frontier built over the same leaves as Build yields the
// identical root at every prefix length.
//
// A Frontier is not safe for concurrent use.
type Frontier struct {
	n     int
	roots [][]byte // perfect-subtree roots, sizes strictly descending
	sizes []int    // leaf count under roots[i]
}

// NewFrontier returns the frontier of an empty tree.
func NewFrontier() *Frontier { return &Frontier{} }

// FrontierOf builds the frontier of an encrypted table's tree.
func FrontierOf(t *ph.EncryptedTable) *Frontier {
	f := NewFrontier()
	for _, tp := range t.Tuples {
		f.AppendTuple(tp)
	}
	return f
}

// Count returns the number of leaves the frontier summarises.
func (f *Frontier) Count() int { return f.n }

// AppendTuple appends the leaf hash of one encrypted tuple.
func (f *Frontier) AppendTuple(tp ph.EncryptedTuple) { f.AppendLeaf(LeafHash(tp)) }

// AppendLeaf appends one leaf hash (as produced by LeafHash). Equal-sized
// trailing subtrees merge immediately, so the stack depth stays at the
// popcount of the leaf count.
func (f *Frontier) AppendLeaf(h []byte) {
	f.roots = append(f.roots, h)
	f.sizes = append(f.sizes, 1)
	f.n++
	for k := len(f.sizes); k >= 2 && f.sizes[k-1] == f.sizes[k-2]; k = len(f.sizes) {
		f.roots[k-2] = interiorHash(f.roots[k-2], f.roots[k-1])
		f.sizes[k-2] *= 2
		f.roots = f.roots[:k-1]
		f.sizes = f.sizes[:k-1]
	}
}

// Root returns the tree root for the current leaf count: the
// right-to-left fold of the subtree roots (a promoted odd node is the
// degenerate single-leaf case). Matches Tree.Root over the same leaves.
func (f *Frontier) Root() []byte {
	if f.n == 0 {
		return emptyRoot()
	}
	acc := f.roots[len(f.roots)-1]
	for i := len(f.roots) - 2; i >= 0; i-- {
		acc = interiorHash(f.roots[i], acc)
	}
	return append([]byte(nil), acc...)
}
