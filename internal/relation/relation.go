// Package relation implements the relational substrate used throughout the
// reproduction: typed schemas, tuples, tables and the fragment of the
// relational algebra the paper's construction supports (exact selects and
// projections).
//
// The paper (Evdokimov et al., ICDE 2006) models a relation as a set of
// tuples over a fixed schema with fixed-width attributes, e.g.
//
//	Emp(name:string[9], dept:string[5], salary:int)
//
// Fixed widths matter: the privacy homomorphism in internal/core derives its
// global word length from the widest attribute, so Schema records a byte
// width for every column. Integer columns are rendered as decimal strings of
// at most Width digits (plus an optional leading '-').
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type enumerates the attribute types supported by the substrate. The paper
// only needs strings and integers; everything else (dates, floats) can be
// encoded into these by the application.
type Type uint8

// Supported attribute types.
const (
	// TypeInvalid is the zero Type and never valid in a schema.
	TypeInvalid Type = iota
	// TypeString is a byte string of bounded length.
	TypeString
	// TypeInt is a signed 64-bit integer rendered in decimal.
	TypeInt
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name, unique within a schema.
	Name string
	// Type is the attribute type.
	Type Type
	// Width is the maximum encoded length in bytes. For TypeString it is
	// the maximum string length; for TypeInt it is the maximum number of
	// decimal digits (a leading '-' is accounted for separately).
	Width int
}

// EncodedWidth returns the maximum number of bytes an encoded value of this
// column can occupy. For integers this includes room for a sign.
func (c Column) EncodedWidth() int {
	if c.Type == TypeInt {
		return c.Width + 1 // optional leading '-'
	}
	return c.Width
}

// String renders the column as "name:type[width]".
func (c Column) String() string {
	return fmt.Sprintf("%s:%s[%d]", c.Name, c.Type, c.Width)
}

// Schema is an ordered list of named, typed, fixed-width columns.
type Schema struct {
	// Name is the relation name.
	Name string
	// Columns holds the attributes in declaration order.
	Columns []Column

	byName map[string]int
}

// NewSchema builds a schema and validates it: the name must be non-empty,
// there must be at least one column, column names must be unique and
// non-empty, types valid, and widths positive.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema name must not be empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: schema %q has no columns", name)
	}
	s := &Schema{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: schema %q: column %d has empty name", name, i)
		}
		if c.Type != TypeString && c.Type != TypeInt {
			return nil, fmt.Errorf("relation: schema %q: column %q has invalid type", name, c.Name)
		}
		if c.Width <= 0 {
			return nil, fmt.Errorf("relation: schema %q: column %q has non-positive width %d", name, c.Name, c.Width)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: schema %q: duplicate column %q", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(name string, cols ...Column) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column and whether it exists.
func (s *Schema) Column(name string) (Column, bool) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// NumColumns returns the number of attributes.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// Equal reports whether two schemas have the same name and identical column
// lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Name != o.Name || len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "Name(col:type[w], ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}

// Value is a dynamically typed attribute value. The zero Value is invalid.
type Value struct {
	typ Type
	s   string
	i   int64
}

// String constructs a string value.
func String(s string) Value { return Value{typ: TypeString, s: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{typ: TypeInt, i: i} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// Str returns the string payload; it is only meaningful for TypeString.
func (v Value) Str() string { return v.s }

// Integer returns the integer payload; it is only meaningful for TypeInt.
func (v Value) Integer() int64 { return v.i }

// Encode renders the value as the canonical byte string used by every scheme
// in this repository: the raw bytes for strings, the decimal representation
// for integers.
func (v Value) Encode() string {
	switch v.typ {
	case TypeString:
		return v.s
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return ""
	}
}

// Equal reports whether two values have the same type and payload.
func (v Value) Equal(o Value) bool {
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeString:
		return v.s == o.s
	case TypeInt:
		return v.i == o.i
	default:
		return true
	}
}

// Less imposes a total order on values of the same type (strings
// lexicographically, integers numerically). Values of different types order
// by type tag; this is only used for canonicalisation.
func (v Value) Less(o Value) bool {
	if v.typ != o.typ {
		return v.typ < o.typ
	}
	switch v.typ {
	case TypeString:
		return v.s < o.s
	case TypeInt:
		return v.i < o.i
	default:
		return false
	}
}

// String renders the value for human consumption.
func (v Value) String() string {
	switch v.typ {
	case TypeString:
		return strconv.Quote(v.s)
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return "<invalid>"
	}
}

// CheckAgainst validates the value against a column: the types must match
// and the encoded form must fit the column width.
func (v Value) CheckAgainst(c Column) error {
	if v.typ != c.Type {
		return fmt.Errorf("relation: column %q expects %s, got %s", c.Name, c.Type, v.typ)
	}
	enc := v.Encode()
	if len(enc) > c.EncodedWidth() {
		return fmt.Errorf("relation: value %s overflows column %s (encoded %d bytes, max %d)",
			v, c, len(enc), c.EncodedWidth())
	}
	return nil
}

// Tuple is an ordered list of values matching a schema's columns.
type Tuple []Value

// Equal reports element-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns a canonical string encoding of the tuple, suitable as a map
// key. Fields are length-prefixed so the encoding is injective.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		enc := v.Encode()
		fmt.Fprintf(&b, "%d:%d:%s;", v.typ, len(enc), enc)
	}
	return b.String()
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Table is a multiset of tuples over a schema. The paper treats relations as
// sets; we keep insertion order for reproducibility but compare tables as
// multisets (see Equal).
type Table struct {
	schema *Schema
	tuples []Tuple
}

// NewTable creates an empty table over the schema.
func NewTable(s *Schema) *Table {
	return &Table{schema: s}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Tuple returns the i-th tuple in insertion order.
func (t *Table) Tuple(i int) Tuple { return t.tuples[i] }

// Tuples returns the backing slice of tuples. Callers must not mutate it.
func (t *Table) Tuples() []Tuple { return t.tuples }

// Insert validates the tuple against the schema and appends it.
func (t *Table) Insert(tp Tuple) error {
	if len(tp) != len(t.schema.Columns) {
		return fmt.Errorf("relation: table %q: tuple has %d values, schema has %d columns",
			t.schema.Name, len(tp), len(t.schema.Columns))
	}
	for i, v := range tp {
		if err := v.CheckAgainst(t.schema.Columns[i]); err != nil {
			return fmt.Errorf("relation: table %q: %w", t.schema.Name, err)
		}
	}
	t.tuples = append(t.tuples, tp.Clone())
	return nil
}

// MustInsert inserts values, panicking on validation failure. Intended for
// tests and examples with statically known data.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{schema: t.schema, tuples: make([]Tuple, len(t.tuples))}
	for i, tp := range t.tuples {
		out.tuples[i] = tp.Clone()
	}
	return out
}

// Equal reports whether two tables have equal schemas and the same multiset
// of tuples, irrespective of order.
func (t *Table) Equal(o *Table) bool {
	if !t.schema.Equal(o.schema) || len(t.tuples) != len(o.tuples) {
		return false
	}
	counts := make(map[string]int, len(t.tuples))
	for _, tp := range t.tuples {
		counts[tp.Key()]++
	}
	for _, tp := range o.tuples {
		counts[tp.Key()]--
		if counts[tp.Key()] < 0 {
			return false
		}
	}
	return true
}

// Sorted returns a copy of the table with tuples in canonical order. Useful
// for deterministic output in examples and goldens.
func (t *Table) Sorted() *Table {
	out := t.Clone()
	sort.Slice(out.tuples, func(i, j int) bool {
		a, b := out.tuples[i], out.tuples[j]
		for k := range a {
			if !a[k].Equal(b[k]) {
				return a[k].Less(b[k])
			}
		}
		return false
	})
	return out
}

// String renders the table with a header row, one tuple per line.
func (t *Table) String() string {
	var b strings.Builder
	names := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		names[i] = c.Name
	}
	b.WriteString(strings.Join(names, " | "))
	b.WriteByte('\n')
	for _, tp := range t.tuples {
		parts := make([]string, len(tp))
		for i, v := range tp {
			parts[i] = v.Encode()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
