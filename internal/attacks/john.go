package attacks

import (
	"fmt"
	"math/rand"

	"repro/internal/games"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// JohnReport aggregates the active attack of §2: "Suppose there was a
// patient John and Eve wants to find out in which hospital he was treated
// and what happened to him." Eve uses the query-encryption oracle to obtain
// encryptions of σ_name:John and σ_hospital:X for X ∈ {1,2,3} (plus
// σ_outcome:'fatal'), evaluates them herself on the ciphertext via the
// homomorphic property, and intersects the result sets. The attack works
// against *every* database PH, including the paper's construction — that is
// exactly why the paper's security statement requires q = 0.
type JohnReport struct {
	// Trials is the number of independent runs.
	Trials int
	// HospitalRate is the fraction of trials in which Eve recovered
	// John's hospital.
	HospitalRate float64
	// OutcomeRate is the fraction of trials in which Eve recovered
	// John's outcome.
	OutcomeRate float64
	// OracleCalls is the number of oracle queries Eve used per trial.
	OracleCalls int
}

// JohnAttack runs the active attack for the given number of trials with
// fresh keys and data per trial.
func JohnAttack(factory games.SchemeFactory, patients, trials int, seed int64) (*JohnReport, error) {
	if patients <= 0 || trials <= 0 {
		return nil, fmt.Errorf("attacks: john attack needs positive patients (%d) and trials (%d)", patients, trials)
	}
	rng := rand.New(rand.NewSource(seed))
	rep := &JohnReport{Trials: trials, OracleCalls: 5}
	var hospHits, outHits int
	for trial := 0; trial < trials; trial++ {
		table, err := workload.Hospital(workload.HospitalConfig{
			Patients:   patients,
			EnsureName: "John",
		}, rng.Int63())
		if err != nil {
			return nil, err
		}
		trueHosp, trueOutcome, err := lookupJohn(table)
		if err != nil {
			return nil, err
		}
		scheme, err := factory(table.Schema())
		if err != nil {
			return nil, err
		}
		ct, err := scheme.EncryptTable(table)
		if err != nil {
			return nil, err
		}
		// Eve's oracle calls: the scheme's own Eq, exactly as in the
		// active variant of Definition 2.1.
		oracle := func(q relation.Eq) ([]int, error) {
			eq, err := scheme.EncryptQuery(q)
			if err != nil {
				return nil, err
			}
			res, err := ph.Apply(ct, eq)
			if err != nil {
				return nil, err
			}
			return res.Positions, nil
		}
		john, err := oracle(relation.Eq{Column: "name", Value: relation.String("John")})
		if err != nil {
			return nil, err
		}
		bestHosp, bestOverlap := 0, -1
		for h := int64(1); h <= 3; h++ {
			inH, err := oracle(relation.Eq{Column: "hospital", Value: relation.Int(h)})
			if err != nil {
				return nil, err
			}
			if overlap := intersectCount(john, inH); overlap > bestOverlap {
				bestHosp, bestOverlap = int(h), overlap
			}
		}
		fatal, err := oracle(relation.Eq{Column: "outcome", Value: relation.String(workload.OutcomeFatal)})
		if err != nil {
			return nil, err
		}
		// John is fatal iff the (usually singleton) name-result mostly
		// lies inside the fatal result.
		guessOutcome := workload.OutcomeHealthy
		if len(john) > 0 && intersectCount(john, fatal)*2 > len(john) {
			guessOutcome = workload.OutcomeFatal
		}
		if bestHosp == int(trueHosp) {
			hospHits++
		}
		if guessOutcome == trueOutcome {
			outHits++
		}
	}
	rep.HospitalRate = float64(hospHits) / float64(trials)
	rep.OutcomeRate = float64(outHits) / float64(trials)
	return rep, nil
}

// lookupJohn returns John's true hospital and outcome from the plaintext.
func lookupJohn(t *relation.Table) (hospital int64, outcome string, err error) {
	res, err := relation.Select(t, relation.Eq{Column: "name", Value: relation.String("John")})
	if err != nil {
		return 0, "", err
	}
	if res.Len() != 1 {
		return 0, "", fmt.Errorf("attacks: expected exactly one John, found %d", res.Len())
	}
	s := t.Schema()
	tp := res.Tuple(0)
	return tp[s.ColumnIndex("hospital")].Integer(), tp[s.ColumnIndex("outcome")].Str(), nil
}
