// Command phclient runs Alex: an interactive SQL shell whose storage lives
// on an untrusted phserver. All encryption happens client-side; the server
// sees only ciphertext, trapdoors and result positions.
//
// Single-table mode:
//
//	phclient -addr localhost:7632 -table emp -passphrase 'my secret' \
//	         [-schema 'name:string:10,dept:string:5,salary:int:5'] [-scheme swp-ph]
//
// Catalog mode (several tables, schemas and schemes from a JSON config;
// per-table keys are derived from the passphrase, no keys in the file):
//
//	phclient -addr localhost:7632 -config client.json -passphrase 'my secret'
//
// If the config carries a "shards" section the shell runs against the
// sharded serving tier instead: it builds an in-process scatter-gather
// coordinator over the listed shard backends (the list order is the
// partition map), -addr is ignored, and every verified read checks each
// shard's sub-answer against a pinned per-shard root vector.
//
// With -explain the shell prints the chosen query plan (conjunct order,
// estimated selectivities, cache state) for each SQL statement instead
// of executing it; a one-off `\explain SELECT ...` does the same for a
// single statement.
//
// Shell commands:
//
//	SELECT ... FROM <table> [WHERE a = v [AND b = w]];   exact selects
//	\explain SELECT ...   print the server's plan without executing
//	\use T         switch the current table (catalog mode)
//	\seed N        generate and upload N demo employee tuples
//	\load f.csv    encrypt and upload a typed CSV file (header: name:type[:width],...)
//	\export f.csv  download, decrypt and write the table as typed CSV
//	\insert v1,v2,...   insert one tuple (values in schema order)
//	\all           download and decrypt the whole table
//	\list          list tables stored at the server
//	\drop          drop the current remote table
//	\quit          exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/schemes/bucket"
	"repro/internal/schemes/damiani"
	"repro/internal/schemes/detph"
	"repro/internal/schemes/gohph"
	"repro/internal/shard"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:7632", "server address")
		table      = flag.String("table", "emp", "remote table name (single-table mode)")
		passphrase = flag.String("passphrase", "", "secret the keys are derived from (required)")
		schemaDDL  = flag.String("schema", "", "schema as col:type:width,... (default: the demo employee schema)")
		schemeName = flag.String("scheme", core.SchemeID, "scheme: swp-ph | goh-ph | bucket | damiani | detph")
		configPath = flag.String("config", "", "catalog config JSON (enables multi-table mode)")
		explain    = flag.Bool("explain", false, "print the server's query plan for SQL statements instead of executing them")
	)
	flag.Parse()
	if *passphrase == "" {
		fmt.Fprintln(os.Stderr, "phclient: -passphrase is required (keys never leave this process)")
		os.Exit(2)
	}
	master := crypto.KeyFromBytes([]byte(*passphrase))

	var cfg *client.Config
	if *configPath != "" {
		var err error
		cfg, err = client.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(2)
		}
	}

	sh := &shell{explain: *explain}
	if cfg != nil && cfg.Shards != nil {
		// Sharded catalog mode: the config's shards section IS the
		// partition map; the shell scatters through an in-process
		// coordinator and -addr is ignored.
		co, err := shard.FromConfig(cfg.Shards, cfg.Net.DialConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(1)
		}
		defer co.Close()
		cat, err := cfg.AttachAllSharded(co, master)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(2)
		}
		sh.cluster = co
		sh.catalog = cat
		names := cat.Names()
		if len(names) > 0 {
			sh.current, _ = cat.DB(names[0])
			sh.currentName = names[0]
		}
		fmt.Printf("connected to %d shards (partition map v%d); catalog tables: %s\n",
			co.NumShards(), co.MapVersion(), strings.Join(names, ", "))
		repl(sh)
		return
	}

	conn, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	sh.conn = conn

	if cfg != nil {
		cat, err := cfg.AttachAll(conn, master)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(2)
		}
		sh.catalog = cat
		names := cat.Names()
		if len(names) > 0 {
			sh.current, _ = cat.DB(names[0])
			sh.currentName = names[0]
		}
		fmt.Printf("connected to %s; catalog tables: %s\n", *addr, strings.Join(names, ", "))
	} else {
		schema := workload.EmployeeSchema()
		if *schemaDDL != "" {
			schema, err = parseSchema(*table, *schemaDDL)
			if err != nil {
				fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
				os.Exit(2)
			}
		}
		scheme, err := makeScheme(*schemeName, master, schema)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(2)
		}
		cat := client.NewCatalog(conn)
		db, err := cat.Attach(*table, scheme)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phclient: %v\n", err)
			os.Exit(2)
		}
		sh.catalog = cat
		sh.current = db
		sh.currentName = *table
		fmt.Printf("connected to %s; table %q, scheme %s, schema %s\n", *addr, *table, scheme.Name(), schema)
	}
	repl(sh)
}

// repl runs the interactive loop until EOF or \quit.
func repl(sh *shell) {
	fmt.Println(`type SQL, or \use T, \seed N, \load f.csv, \export f.csv, \insert v1,v2,..., \all, \list, \drop, \quit`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("alex[%s]> ", sh.currentName)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := sh.execute(line); err != nil {
			if err == errQuit {
				return
			}
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// shell holds the REPL state: the connection (or the sharded
// coordinator when the config carries a shards section), the catalog,
// the table backslash commands act on, and whether SQL statements are
// explained instead of executed.
type shell struct {
	conn        *client.Conn
	cluster     *shard.Coordinator
	catalog     *client.Catalog
	current     *client.DB
	currentName string
	explain     bool
}

// execute runs one shell line.
func (sh *shell) execute(line string) error {
	db := sh.current
	switch {
	case line == `\quit` || line == `\q`:
		return errQuit
	case strings.HasPrefix(line, `\use `):
		name := strings.TrimSpace(strings.TrimPrefix(line, `\use `))
		next, err := sh.catalog.DB(name)
		if err != nil {
			return err
		}
		sh.current = next
		sh.currentName = name
		return nil
	case line == `\list`:
		var infos []wire.TableInfo
		var err error
		if sh.cluster != nil {
			infos, err = sh.cluster.List()
		} else {
			infos, err = sh.conn.List()
		}
		if err != nil {
			return err
		}
		for _, ti := range infos {
			fmt.Printf("  %-20s %-10s %d tuples\n", ti.Name, ti.SchemeID, ti.Tuples)
		}
		return nil
	case line == `\drop`:
		if sh.cluster != nil {
			return sh.cluster.Drop(sh.currentName)
		}
		return sh.conn.Drop(sh.currentName)
	case line == `\all`:
		if db == nil {
			return fmt.Errorf("no current table; use \\use")
		}
		t, err := db.SelectAll()
		if err != nil {
			return err
		}
		fmt.Print(t.Sorted())
		return nil
	case strings.HasPrefix(line, `\seed `):
		if db == nil {
			return fmt.Errorf("no current table; use \\use")
		}
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, `\seed `)))
		if err != nil {
			return fmt.Errorf("\\seed needs a count: %w", err)
		}
		if !db.Scheme().Schema().Equal(workload.EmployeeSchema()) {
			return fmt.Errorf("\\seed only works with the demo employee schema")
		}
		t, err := workload.Employees(n, 42)
		if err != nil {
			return err
		}
		if err := db.CreateTable(t); err != nil {
			return err
		}
		fmt.Printf("uploaded %d encrypted tuples\n", n)
		return nil
	case strings.HasPrefix(line, `\load `):
		if db == nil {
			return fmt.Errorf("no current table; use \\use")
		}
		path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		t, err := relation.ReadCSV(f, db.Scheme().Schema().Name)
		if err != nil {
			return err
		}
		if !t.Schema().Equal(db.Scheme().Schema()) {
			return fmt.Errorf("csv schema %s does not match client schema %s (pass -schema to change it)",
				t.Schema(), db.Scheme().Schema())
		}
		if err := db.CreateTable(t); err != nil {
			return err
		}
		fmt.Printf("uploaded %d encrypted tuples from %s\n", t.Len(), path)
		return nil
	case strings.HasPrefix(line, `\export `):
		if db == nil {
			return fmt.Errorf("no current table; use \\use")
		}
		path := strings.TrimSpace(strings.TrimPrefix(line, `\export `))
		t, err := db.SelectAll()
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, t.Sorted()); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples to %s\n", t.Len(), path)
		return nil
	case strings.HasPrefix(line, `\insert `):
		if db == nil {
			return fmt.Errorf("no current table; use \\use")
		}
		tp, err := parseTuple(db.Scheme().Schema(), strings.TrimPrefix(line, `\insert `))
		if err != nil {
			return err
		}
		return db.Insert(tp)
	case strings.HasPrefix(line, `\explain `):
		sql := strings.TrimSpace(strings.TrimPrefix(line, `\explain `))
		plan, err := sh.catalog.Explain(sql)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	case strings.HasPrefix(line, `\`):
		return fmt.Errorf("unknown command %q", line)
	default:
		if sh.explain {
			plan, err := sh.catalog.Explain(line)
			if err != nil {
				return err
			}
			fmt.Print(plan)
			return nil
		}
		t, err := sh.catalog.Query(line)
		if err != nil {
			return err
		}
		fmt.Print(t.Sorted())
		fmt.Printf("(%d tuples)\n", t.Len())
		return nil
	}
}

// makeScheme instantiates the selected scheme.
func makeScheme(name string, key crypto.Key, schema *relation.Schema) (ph.Scheme, error) {
	switch name {
	case core.SchemeID:
		return core.New(key, schema, core.Options{})
	case bucket.SchemeID:
		return bucket.New(key, schema, bucket.Options{})
	case damiani.SchemeID:
		return damiani.New(key, schema, damiani.Options{})
	case detph.SchemeID:
		return detph.New(key, schema)
	case gohph.SchemeID:
		return gohph.New(key, schema, gohph.Options{})
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

// parseSchema parses "col:type:width,..." DDL.
func parseSchema(name, ddl string) (*relation.Schema, error) {
	var cols []relation.Column
	for _, part := range strings.Split(ddl, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("schema element %q is not col:type:width", part)
		}
		var typ relation.Type
		switch fields[1] {
		case "string":
			typ = relation.TypeString
		case "int":
			typ = relation.TypeInt
		default:
			return nil, fmt.Errorf("unknown type %q (string|int)", fields[1])
		}
		w, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("width %q: %w", fields[2], err)
		}
		cols = append(cols, relation.Column{Name: fields[0], Type: typ, Width: w})
	}
	return relation.NewSchema(name, cols...)
}

// parseTuple parses comma-separated values in schema order.
func parseTuple(s *relation.Schema, in string) (relation.Tuple, error) {
	parts := strings.Split(in, ",")
	if len(parts) != s.NumColumns() {
		return nil, fmt.Errorf("tuple has %d values, schema needs %d", len(parts), s.NumColumns())
	}
	tp := make(relation.Tuple, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		switch s.Columns[i].Type {
		case relation.TypeInt:
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", s.Columns[i].Name, err)
			}
			tp[i] = relation.Int(v)
		default:
			tp[i] = relation.String(strings.Trim(p, "'"))
		}
	}
	return tp, nil
}
