package client

import (
	"bufio"
	"log"
	"net"
	"strings"
	"testing"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/sqlmini"
	"repro/internal/storage"
	"repro/internal/wire"
)

// conjDB uploads a slightly larger employee table and returns a DB over
// a frame-counting pipe.
func conjDB(t *testing.T, pin bool) (*DB, *frameCounter) {
	t.Helper()
	store := storage.NewMemory()
	conn, fc := startCountingPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	tbl := relation.NewTable(empSchema())
	rows := []struct {
		name, dept string
		salary     int64
	}{
		{"Montgomery", "HR", 7500},
		{"Ada", "IT", 9100},
		{"Grace", "HR", 8800},
		{"Barbara", "HR", 7500},
		{"Alan", "IT", 7500},
		{"Edsger", "OPS", 7500},
	}
	for _, r := range rows {
		tbl.MustInsert(relation.String(r.name), relation.String(r.dept), relation.Int(r.salary))
	}
	if err := db.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	if !pin {
		db.PinRoot(nil, 0)
	}
	return db, fc
}

// sortedRows renders a table in a deterministic order for comparison.
func sortedRows(t *testing.T, tbl *relation.Table) string {
	t.Helper()
	return tbl.Sorted().String()
}

// TestQueryConjPushdownMatchesLegacy: the pushdown path must answer
// byte-identically to the legacy SelectMany+Intersect path, for
// overlapping, disjoint and triple conjunctions.
func TestQueryConjPushdownMatchesLegacy(t *testing.T) {
	db, fc := conjDB(t, false)
	for _, sql := range []string{
		"SELECT * FROM emp WHERE dept = 'HR' AND salary = 7500",
		"SELECT * FROM emp WHERE dept = 'IT' AND salary = 8800",
		"SELECT name FROM emp WHERE dept = 'HR' AND salary = 7500 AND name = 'Barbara'",
	} {
		q, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		parsed, err := parseEqs(t, db, sql)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := db.SelectConjLegacy(parsed)
		if err != nil {
			t.Fatal(err)
		}
		want := legacy
		if strings.Contains(sql, "SELECT name ") {
			want, err = relation.Project(legacy, "name")
			if err != nil {
				t.Fatal(err)
			}
		}
		if sortedRows(t, q) != sortedRows(t, want) {
			t.Fatalf("%s:\npushdown:\n%slegacy:\n%s", sql, sortedRows(t, q), sortedRows(t, want))
		}
	}
	if n := fc.count(wire.CmdQueryConj); n == 0 {
		t.Fatal("conjunctive queries did not use CmdQueryConj")
	}
}

// parseEqs binds a statement's WHERE clause for the legacy comparison.
func parseEqs(t *testing.T, db *DB, sql string) ([]relation.Eq, error) {
	t.Helper()
	q, err := sqlmini.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.bindWhere(q)
}

// TestQuerySingleEqualityUsesVerifiedPath: with a pinned root, a
// one-conjunct db.Query must go through CmdQueryVerified — the silent
// downgrade to the unverified CmdQueryBatch path is the regression this
// test pins down.
func TestQuerySingleEqualityUsesVerifiedPath(t *testing.T) {
	db, fc := conjDB(t, true)
	out, err := db.Query("SELECT * FROM emp WHERE dept = 'IT'")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d tuples, want 2", out.Len())
	}
	if n := fc.count(wire.CmdQueryVerified); n != 1 {
		t.Fatalf("pinned single-equality Query sent %d CmdQueryVerified frames, want 1", n)
	}
	if n := fc.count(wire.CmdQueryBatch); n != 0 {
		t.Fatalf("pinned single-equality Query leaked %d CmdQueryBatch frames", n)
	}
}

// TestQueryConjVerifiedWhenPinned: a pinned conjunctive query runs the
// verified conjunctive protocol and still matches the legacy answer.
func TestQueryConjVerifiedWhenPinned(t *testing.T) {
	db, fc := conjDB(t, true)
	out, err := db.Query("SELECT * FROM emp WHERE dept = 'HR' AND salary = 7500")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // Montgomery, Barbara
		t.Fatalf("got %d tuples, want 2:\n%s", out.Len(), sortedRows(t, out))
	}
	if n := fc.count(wire.CmdQueryConj); n != 1 {
		t.Fatalf("sent %d CmdQueryConj frames, want 1", n)
	}
}

// TestQueryConjVerifiedDetectsTampering: replacing the table behind the
// pin must make a verified conjunctive query fail before decryption.
func TestQueryConjVerifiedDetectsTampering(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	// Eve swaps the table for a different ciphertext (re-encryption of
	// the same rows under the same scheme, different randomness).
	evil, err := db.scheme.EncryptTable(empTable())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("emp", evil); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query("SELECT * FROM emp WHERE dept = 'HR' AND salary = 7500")
	if err == nil || !strings.Contains(err.Error(), "verification failed") {
		t.Fatalf("tampered conjunctive answer accepted: %v", err)
	}
}

// TestCheckVerifiedRejectsDuplicatedPositions: inclusion proofs say a
// tuple IS at a position, not how often it may be listed — a malicious
// server repeating one tuple with its valid proof must not inflate a
// verified result's multiset.
func TestCheckVerifiedRejectsDuplicatedPositions(t *testing.T) {
	store := storage.NewMemory()
	conn := startPipe(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	eq, err := db.scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		t.Fatal(err)
	}
	vr, err := conn.QueryVerified("emp", eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.Result.Positions) < 1 {
		t.Fatal("fixture query matched nothing")
	}
	// Sanity: the honest answer verifies.
	if err := db.checkVerified(vr); err != nil {
		t.Fatalf("honest answer rejected: %v", err)
	}
	// Malicious inflation: repeat the first tuple, position and proof.
	vr.Result.Positions = append([]int{vr.Result.Positions[0]}, vr.Result.Positions...)
	vr.Result.Tuples = append([]ph.EncryptedTuple{vr.Result.Tuples[0]}, vr.Result.Tuples...)
	vr.Proofs = append([]authindex.Proof{vr.Proofs[0]}, vr.Proofs...)
	err = db.checkVerified(vr)
	if err == nil || !strings.Contains(err.Error(), "strictly ascending") {
		t.Fatalf("duplicated position accepted: %v", err)
	}
}

// legacyProxy forwards frames to a real server but answers CmdQueryConj
// with the unknown-command error a pre-pushdown server would produce.
func legacyProxy(t *testing.T, store *storage.Store) *Conn {
	t.Helper()
	srv := server.New(store, log.New(testWriter{t}, "", 0))
	srvCli, srvSide := net.Pipe()
	go srv.ServeConn(srvSide)
	cliSide, proxySide := net.Pipe()
	go func() {
		defer srvCli.Close()
		pr := bufio.NewReader(proxySide)
		pw := bufio.NewWriter(proxySide)
		sr := bufio.NewReader(srvCli)
		sw := bufio.NewWriter(srvCli)
		for {
			f, err := wire.ReadFrame(pr)
			if err != nil {
				return
			}
			if f.Type == wire.CmdQueryConj {
				resp := wire.Frame{Type: wire.RespError,
					Payload: wire.AppendString(nil, "server: unknown command 0x0c")}
				if err := wire.WriteFrame(pw, resp); err != nil {
					return
				}
				continue
			}
			if err := wire.WriteFrame(sw, f); err != nil {
				return
			}
			resp, err := wire.ReadFrame(sr)
			if err != nil {
				return
			}
			if err := wire.WriteFrame(pw, resp); err != nil {
				return
			}
		}
	}()
	conn := NewConn(cliSide)
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestQueryConjFallsBackOnOldServer: against a server without
// CmdQueryConj the client transparently runs the documented legacy
// intersection and still answers correctly.
func TestQueryConjFallsBackOnOldServer(t *testing.T) {
	store := storage.NewMemory()
	conn := legacyProxy(t, store)
	db := NewDB(conn, newScheme(t), "emp")
	if err := db.CreateTable(empTable()); err != nil {
		t.Fatal(err)
	}
	db.PinRoot(nil, 0)
	out, err := db.Query("SELECT * FROM emp WHERE dept = 'HR' AND salary = 7500")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("fallback answered %d tuples, want 1 (Montgomery):\n%s", out.Len(), sortedRows(t, out))
	}
}

// TestExplainRendersPlan: -explain surfaces the server's plan without
// executing the query.
func TestExplainRendersPlan(t *testing.T) {
	db, fc := conjDB(t, false)
	out, err := db.Explain("SELECT * FROM emp WHERE dept = 'HR' AND salary = 7500")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan for emp", "σ_dept:HR", "σ_salary:7500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if n := fc.count(wire.CmdQueryConj); n != 1 {
		t.Fatalf("explain sent %d CmdQueryConj frames, want 1", n)
	}
	// Single-equality and bare statements are described locally.
	out, err = db.Explain("SELECT * FROM emp WHERE dept = 'HR'")
	if err != nil || !strings.Contains(out, "single select") {
		t.Fatalf("single-equality explain: %q, %v", out, err)
	}
	out, err = db.Explain("SELECT * FROM emp")
	if err != nil || !strings.Contains(out, "full table download") {
		t.Fatalf("bare explain: %q, %v", out, err)
	}
}
