package storage

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ph"
)

// fakeEvaluator registers a trivial evaluator once for query tests.
var registerOnce sync.Once

func fakeTable(n int) *ph.EncryptedTable {
	registerOnce.Do(func() {
		ph.RegisterEvaluator("storage-test", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
			return ph.SelectPositions(et, []int{0}), nil
		})
	})
	t := &ph.EncryptedTable{SchemeID: "storage-test", Meta: []byte{1}}
	for i := 0; i < n; i++ {
		t.Tuples = append(t.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i)},
			Blob:  []byte{0xB0, byte(i)},
			Words: [][]byte{{0xA0, byte(i)}},
		})
	}
	return t
}

func TestMemoryPutGet(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", fakeTable(3)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 3 {
		t.Fatalf("got %d tuples", len(got.Tuples))
	}
	// Get must return a copy.
	got.Tuples[0].ID[0] = 0xFF
	again, _ := s.Get("emp")
	if again.Tuples[0].ID[0] == 0xFF {
		t.Fatal("Get shares memory with the store")
	}
}

func TestPutEmptyNameRejected(t *testing.T) {
	s := NewMemory()
	if err := s.Put("", fakeTable(1)); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestGetUnknown(t *testing.T) {
	s := NewMemory()
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("unknown table returned")
	}
}

func TestAppendAndDrop(t *testing.T) {
	s := NewMemory()
	if err := s.Append("emp", fakeTable(1).Tuples); err == nil {
		t.Fatal("append to unknown table accepted")
	}
	if err := s.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(3).Tuples); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("emp")
	if len(got.Tuples) != 5 {
		t.Fatalf("after append: %d tuples, want 5", len(got.Tuples))
	}
	if err := s.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("emp"); err == nil {
		t.Fatal("double drop accepted")
	}
}

func TestQueryDispatch(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("emp", &ph.EncryptedQuery{SchemeID: "storage-test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 || res.Positions[0] != 0 {
		t.Fatalf("query result: %+v", res)
	}
	if _, err := s.Query("none", &ph.EncryptedQuery{SchemeID: "storage-test"}); err == nil {
		t.Fatal("query on unknown table accepted")
	}
}

func TestList(t *testing.T) {
	s := NewMemory()
	s.Put("zeta", fakeTable(1))
	s.Put("alpha", fakeTable(2))
	infos := s.List()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "zeta" {
		t.Fatalf("list: %+v", infos)
	}
	if infos[1].Tuples != 1 || infos[0].SchemeID != "storage-test" {
		t.Fatalf("list detail: %+v", infos)
	}
}

func TestPersistenceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tmp", fakeTable(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 3 {
		t.Fatalf("replayed table has %d tuples, want 3", len(got.Tuples))
	}
	if _, err := s2.Get("tmp"); err == nil {
		t.Fatal("dropped table survived replay")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", fakeTable(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: write garbage half-record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 50, opInsert, 1, 2, 3}) // declares 50 bytes, has 3
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("torn log not recovered: %v", err)
	}
	defer s2.Close()
	got, err := s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 2 {
		t.Fatalf("replayed table has %d tuples, want 2", len(got.Tuples))
	}
	// The torn tail must have been truncated so new appends work.
	if err := s2.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err = s3.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 3 {
		t.Fatalf("after recovery+append: %d tuples, want 3", len(got.Tuples))
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: repeated stores of the same table, appends, a dropped table.
	for i := 0; i < 10; i++ {
		if err := s.Put("emp", fakeTable(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("emp", fakeTable(2).Tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tmp", fakeTable(8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("tmp"); err != nil {
		t.Fatal(err)
	}
	before, err := s.LogSize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := s.LogSize()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, after)
	}
	// State survives both in memory and across a reopen.
	got, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 6 {
		t.Fatalf("after compaction: %d tuples, want 6", len(got.Tuples))
	}
	// The compacted log must still accept appends.
	if err := s.Append("emp", fakeTable(1).Tuples); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 7 {
		t.Fatalf("after reopen: %d tuples, want 7", len(got.Tuples))
	}
	if _, err := s2.Get("tmp"); err == nil {
		t.Fatal("dropped table resurrected by compaction")
	}
}

func TestCompactInMemoryNoop(t *testing.T) {
	s := NewMemory()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.LogSize(); err != nil || n != 0 {
		t.Fatalf("in-memory log size = %d, %v", n, err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemory()
	if err := s.Put("emp", fakeTable(4)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				switch i % 3 {
				case 0:
					s.Get("emp")
				case 1:
					s.Append("emp", fakeTable(1).Tuples)
				default:
					s.List()
				}
			}
		}(i)
	}
	wg.Wait()
	got, err := s.Get("emp")
	if err != nil {
		t.Fatal(err)
	}
	// 4 initial + ~(8/3 rounded) goroutines * 50 appends each.
	if len(got.Tuples) < 104 {
		t.Fatalf("lost appends: %d tuples", len(got.Tuples))
	}
}
