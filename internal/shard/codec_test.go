package shard

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/authindex"
	"repro/internal/ph"
	"repro/internal/query"
	"repro/internal/wire"
)

func sampleTuple(id byte) ph.EncryptedTuple {
	return ph.EncryptedTuple{
		ID:    []byte{id, 0x01, 0x02},
		Blob:  []byte{0xAA, id},
		Words: [][]byte{{0x10, id}, {0x20, id}},
	}
}

func sampleResponse() (uint64, []Sub) {
	return 7, []Sub{
		{Shard: 0, Kind: KindResults, Results: []*ph.Result{{
			Positions: []int{0, 2},
			Tuples:    []ph.EncryptedTuple{sampleTuple(1), sampleTuple(2)},
		}}},
		{Shard: 2, Kind: KindResults, Results: []*ph.Result{{
			Positions: []int{1},
			Tuples:    []ph.EncryptedTuple{sampleTuple(3)},
		}}},
	}
}

func TestShardResponseRoundTrip(t *testing.T) {
	version, subs := sampleResponse()
	payload := EncodeResponse(nil, version, subs)
	gotVersion, gotSubs, err := DecodeResponse(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gotVersion != version {
		t.Fatalf("map version %d, want %d", gotVersion, version)
	}
	if len(gotSubs) != len(subs) {
		t.Fatalf("%d subs, want %d", len(gotSubs), len(subs))
	}
	for i := range subs {
		if gotSubs[i].Shard != subs[i].Shard || gotSubs[i].Kind != subs[i].Kind {
			t.Fatalf("sub %d framing: %+v vs %+v", i, gotSubs[i], subs[i])
		}
		want, got := subs[i].Results[0], gotSubs[i].Results[0]
		if len(got.Positions) != len(want.Positions) || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("sub %d result shape differs", i)
		}
		for j := range want.Tuples {
			if !bytes.Equal(got.Tuples[j].ID, want.Tuples[j].ID) {
				t.Fatalf("sub %d tuple %d differs", i, j)
			}
		}
	}
}

func TestShardResponseVerifiedAndConjAndTableKinds(t *testing.T) {
	vr := &authindex.VerifiedResult{
		Result:  &ph.Result{Positions: []int{0}, Tuples: []ph.EncryptedTuple{sampleTuple(9)}},
		Root:    bytes.Repeat([]byte{0x42}, 32),
		Leaves:  3,
		Version: 11,
		Proofs:  []authindex.Proof{},
	}
	subs := []Sub{
		{Shard: 0, Kind: KindVerified, Verified: []*authindex.VerifiedResult{vr}},
		{Shard: 1, Kind: KindConj, Conj: &query.Response{
			Plan:   &query.PlanInfo{Tuples: 5, Steps: []query.StepInfo{{Index: 0, Tested: 5, Hits: 2}}},
			Result: &ph.Result{Positions: []int{1, 3}, Tuples: []ph.EncryptedTuple{sampleTuple(4), sampleTuple(5)}},
		}},
		{Shard: 2, Kind: KindTable, Table: &ph.EncryptedTable{
			SchemeID: "swp-ph",
			Meta:     []byte{0x01},
			Tuples:   []ph.EncryptedTuple{sampleTuple(6)},
		}},
	}
	payload := EncodeResponse(nil, 1, subs)
	_, got, err := DecodeResponse(payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Verified[0].Leaves != 3 || got[0].Verified[0].Version != 11 {
		t.Fatalf("verified sub decoded wrong: %+v", got[0].Verified[0])
	}
	if got[1].Conj == nil || got[1].Conj.Plan.Tuples != 5 {
		t.Fatalf("conj sub decoded wrong: %+v", got[1].Conj)
	}
	if got[2].Table == nil || got[2].Table.SchemeID != "swp-ph" {
		t.Fatalf("table sub decoded wrong: %+v", got[2].Table)
	}
}

func TestShardResponseHostile(t *testing.T) {
	version, subs := sampleResponse()
	valid := EncodeResponse(nil, version, subs)

	t.Run("truncations", func(t *testing.T) {
		for i := 0; i < len(valid); i++ {
			if _, _, err := DecodeResponse(valid[:i], 4); err == nil {
				t.Fatalf("truncation to %d bytes accepted", i)
			}
		}
	})

	t.Run("descending shard ids", func(t *testing.T) {
		flipped := []Sub{subs[1], subs[0]}
		payload := EncodeResponse(nil, version, flipped)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "ascending") {
			t.Fatalf("descending shard ids accepted: %v", err)
		}
	})

	t.Run("duplicate shard ids", func(t *testing.T) {
		dup := []Sub{subs[0], subs[0]}
		payload := EncodeResponse(nil, version, dup)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "ascending") {
			t.Fatalf("duplicate shard ids accepted: %v", err)
		}
	})

	t.Run("shard id outside map", func(t *testing.T) {
		payload := EncodeResponse(nil, version, subs)
		if _, _, err := DecodeResponse(payload, 2); err == nil || !strings.Contains(err.Error(), "outside") {
			t.Fatalf("shard id 2 accepted in a 2-shard map: %v", err)
		}
	})

	t.Run("too many shards declared", func(t *testing.T) {
		payload := wire.AppendU64(nil, version)
		payload = wire.AppendU32(payload, 0xFFFFFFFF)
		if _, _, err := DecodeResponse(payload, 4); err == nil {
			t.Fatal("length-bomb shard count accepted")
		}
	})

	t.Run("result length bomb", func(t *testing.T) {
		body := wire.AppendU32(nil, 0xFFFFFFFF) // declared result count
		payload := wire.AppendU64(nil, version)
		payload = wire.AppendU32(payload, 1)
		payload = wire.AppendU32(payload, 0)
		payload = wire.AppendU8(payload, KindResults)
		payload = wire.AppendBytes(payload, body)
		if _, _, err := DecodeResponse(payload, 4); err == nil {
			t.Fatal("length-bomb result count accepted")
		}
	})

	t.Run("duplicate positions", func(t *testing.T) {
		bad := []Sub{{Shard: 0, Kind: KindResults, Results: []*ph.Result{{
			Positions: []int{2, 2},
			Tuples:    []ph.EncryptedTuple{sampleTuple(1), sampleTuple(2)},
		}}}}
		payload := EncodeResponse(nil, version, bad)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "ascending") {
			t.Fatalf("duplicate positions accepted: %v", err)
		}
	})

	t.Run("descending positions", func(t *testing.T) {
		bad := []Sub{{Shard: 0, Kind: KindResults, Results: []*ph.Result{{
			Positions: []int{3, 1},
			Tuples:    []ph.EncryptedTuple{sampleTuple(1), sampleTuple(2)},
		}}}}
		payload := EncodeResponse(nil, version, bad)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "ascending") {
			t.Fatalf("descending positions accepted: %v", err)
		}
	})

	t.Run("unknown kind", func(t *testing.T) {
		payload := wire.AppendU64(nil, version)
		payload = wire.AppendU32(payload, 1)
		payload = wire.AppendU32(payload, 0)
		payload = wire.AppendU8(payload, 0x7F)
		payload = wire.AppendBytes(payload, nil)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "kind") {
			t.Fatalf("unknown kind accepted: %v", err)
		}
	})

	t.Run("trailing bytes", func(t *testing.T) {
		payload := append(append([]byte(nil), valid...), 0xFF)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("trailing bytes accepted: %v", err)
		}
	})

	t.Run("sub-payload trailing bytes", func(t *testing.T) {
		body := wire.AppendU32(nil, 0) // zero results...
		body = append(body, 0xAB)      // ...then junk
		payload := wire.AppendU64(nil, version)
		payload = wire.AppendU32(payload, 1)
		payload = wire.AppendU32(payload, 0)
		payload = wire.AppendU8(payload, KindResults)
		payload = wire.AppendBytes(payload, body)
		if _, _, err := DecodeResponse(payload, 4); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("sub-payload trailing bytes accepted: %v", err)
		}
	})
}

func TestShardAcksRoundTripAndHostile(t *testing.T) {
	acks := []Ack{
		{Shard: 0, Base: 10, Count: 2, Version: 5},
		{Shard: 3, Base: 0, Count: 1, Version: 1},
	}
	payload := EncodeAcks(nil, 9, acks)
	version, got, err := DecodeAcks(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if version != 9 || len(got) != 2 || got[0] != acks[0] || got[1] != acks[1] {
		t.Fatalf("acks decoded wrong: v=%d %+v", version, got)
	}

	for i := 0; i < len(payload); i++ {
		if _, _, err := DecodeAcks(payload[:i], 4); err == nil {
			t.Fatalf("ack truncation to %d bytes accepted", i)
		}
	}
	flipped := EncodeAcks(nil, 9, []Ack{acks[1], acks[0]})
	if _, _, err := DecodeAcks(flipped, 4); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("descending ack shard ids accepted: %v", err)
	}
	if _, _, err := DecodeAcks(payload, 2); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("ack shard id outside map accepted: %v", err)
	}
	bomb := wire.AppendU64(nil, 9)
	bomb = wire.AppendU32(bomb, 0xFFFFFFFF)
	if _, _, err := DecodeAcks(bomb, 4); err == nil {
		t.Fatal("length-bomb ack count accepted")
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	qs := []*ph.EncryptedQuery{
		{SchemeID: "swp-ph", Token: []byte{1, 2, 3}},
		{SchemeID: "swp-ph", Token: []byte{4, 5}},
	}
	payload := EncodeQueryRequest(nil, "emp", wire.ShardFlagVerified, qs)
	name, flags, got, err := DecodeQueryRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if name != "emp" || flags != wire.ShardFlagVerified || len(got) != 2 {
		t.Fatalf("request decoded wrong: %q %#x %d", name, flags, len(got))
	}
	if !bytes.Equal(got[1].Token, qs[1].Token) {
		t.Fatal("query token differs after round trip")
	}
	bomb := wire.AppendString(nil, "emp")
	bomb = wire.AppendU8(bomb, 0)
	bomb = wire.AppendU32(bomb, 0xFFFFFFFF)
	if _, _, _, err := DecodeQueryRequest(bomb); err == nil {
		t.Fatal("length-bomb query count accepted")
	}
}

func TestMapRouteDeterministicAndSplitOrder(t *testing.T) {
	m := Map{Version: 3, Count: 4}
	tuples := make([]ph.EncryptedTuple, 64)
	for i := range tuples {
		tuples[i] = sampleTuple(byte(i))
	}
	parts := m.Split(tuples)
	if len(parts) != 4 {
		t.Fatalf("split into %d parts", len(parts))
	}
	total := 0
	for s, part := range parts {
		total += len(part)
		prev := -1
		for _, tp := range part {
			if m.Route(tp) != s {
				t.Fatal("tuple routed to the wrong part")
			}
			idx := int(tp.ID[0])
			if idx <= prev {
				t.Fatal("split does not preserve input order")
			}
			prev = idx
		}
	}
	if total != len(tuples) {
		t.Fatalf("split covers %d of %d tuples", total, len(tuples))
	}
	// A different map version is a different placement epoch.
	m2 := Map{Version: 4, Count: 4}
	moved := false
	for _, tp := range tuples {
		if m.Route(tp) != m2.Route(tp) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("bumping the map version did not reshuffle any tuple")
	}
}
