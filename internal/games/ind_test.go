package games

import (
	"math/rand"
	"testing"

	"repro/internal/crypto"
	"repro/internal/swp"
)

// sealerFactory builds a probabilistic AEAD encryptor per trial.
func sealerFactory() (Encryptor, error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	s, err := crypto.NewSealer(key)
	if err != nil {
		return nil, err
	}
	return s.Seal, nil
}

// prpFactory builds a deterministic (PRP) encryptor per trial — designed
// to lose the game under chosen plaintexts.
func prpFactory() (Encryptor, error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	p, err := crypto.NewPRP(key, 8)
	if err != nil {
		return nil, err
	}
	return p.Encrypt, nil
}

// swpWordFactory encrypts a fresh word at a fresh position each call,
// modelling how internal/core uses SWP (fresh doc ID per tuple).
func swpWordFactory() (Encryptor, error) {
	key, err := crypto.RandomKey()
	if err != nil {
		return nil, err
	}
	s, err := swp.New(key, swp.Params{WordLen: 8, ChecksumLen: 2})
	if err != nil {
		return nil, err
	}
	ctr := 0
	return func(pt []byte) ([]byte, error) {
		ctr++
		docID := []byte{byte(ctr), byte(ctr >> 8)}
		return s.EncryptWord(docID, 0, pt)
	}, nil
}

var matcher = CiphertextMatcher{
	M0: []byte("salary00"),
	M1: []byte("salary99"),
}

func TestINDDeterministicSchemeLoses(t *testing.T) {
	g := IND{Factory: prpFactory, ChosenPlaintext: true}
	res, err := g.Run(matcher, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() != 1 {
		t.Fatalf("matcher should always beat a deterministic scheme, won %v", res.Rate())
	}
}

func TestINDAEADResists(t *testing.T) {
	g := IND{Factory: sealerFactory, ChosenPlaintext: true}
	res, err := g.Run(matcher, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
		t.Fatalf("matcher advantage %v against AES-GCM; expected ≈ 0", res.Advantage())
	}
}

func TestINDSWPWordsResist(t *testing.T) {
	// SWP as used by the construction: fresh document per encryption, so
	// even the chosen-plaintext matcher gains nothing.
	g := IND{Factory: swpWordFactory, ChosenPlaintext: true}
	res, err := g.Run(matcher, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
		t.Fatalf("matcher advantage %v against SWP words; expected ≈ 0", res.Advantage())
	}
}

func TestINDWithoutSamplesIsBlind(t *testing.T) {
	// Without chosen-plaintext samples even the deterministic scheme
	// resists the matcher (it has nothing to compare against).
	g := IND{Factory: prpFactory, ChosenPlaintext: false}
	res, err := g.Run(matcher, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage() > 0.25 || res.Advantage() < -0.25 {
		t.Fatalf("sample-less matcher advantage %v; expected ≈ 0", res.Advantage())
	}
}

type badINDAdversary struct{ guess int }

func (badINDAdversary) Name() string { return "bad" }
func (badINDAdversary) ChoosePlaintexts(*rand.Rand) ([]byte, []byte, error) {
	return []byte("x"), []byte("xy"), nil // unequal lengths
}
func (b badINDAdversary) GuessFrom(*rand.Rand, []byte, [2][]byte) (int, error) {
	return b.guess, nil
}

func TestINDValidation(t *testing.T) {
	if _, err := (IND{}).Run(matcher, 10, 1); err == nil {
		t.Fatal("missing factory accepted")
	}
	g := IND{Factory: sealerFactory}
	if _, err := g.Run(matcher, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := g.Run(badINDAdversary{}, 1, 1); err == nil {
		t.Fatal("unequal-length plaintexts accepted — Definition 1.2 step 1 violated")
	}
}
