// Package lockio flags blocking I/O performed while a storage-layer
// write lock is held — the latency collapse class that PR3's
// WAL-shipping work had to engineer around: an fsync (or a network
// write, or a sleep) under storage.Store.mu stalls every reader and
// writer in the process for the duration of a disk flush.
//
// The analysis tracks write-lock regions per function: a call to
// Lock() on a sync.Mutex or sync.RWMutex field opens a region keyed by
// the lock's printed expression ("s.mu"), Unlock() closes it, and
// `defer x.Unlock()` leaves it open to the end of the function (which
// is correct: the lock really is held until return). RLock is ignored —
// shared readers do not serialise behind each other.
//
// Inside a region, a call is flagged when it blocks on the world
// outside the process:
//
//   - time.Sleep
//   - any zero-argument Sync() method (os.File and everything shaped
//     like it)
//   - any call into package net
//   - a same-package function that transitively reaches one of the
//     above; the finding spells out the call chain.
//
// Bodies of `go` statements and deferred function literals run outside
// the region and are skipped.
package lockio

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockio analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: "no fsync, network I/O, or sleeping while a storage or shard lock is held; " +
		"stage under the lock, flush outside it",
	Match: func(path string) bool {
		return analysis.PathHasAnySegment(path, "storage", "shard", "scanshare")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	a := &analyzerState{pass: pass, blocking: map[*types.Func]*reason{}}
	a.buildCallGraph()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.checkFunc(fd)
			}
		}
	}
	return nil
}

// reason records why a function is considered blocking: either a direct
// banned call (what != "") or a call to another blocking function.
type reason struct {
	what string // "time.Sleep", "fsync", "net I/O" for direct reasons
	via  *types.Func
}

type analyzerState struct {
	pass *analysis.Pass
	// decls maps package-level functions to their bodies.
	decls map[*types.Func]*ast.FuncDecl
	// blocking marks functions that (transitively) perform banned I/O.
	blocking map[*types.Func]*reason
}

// buildCallGraph computes the blocking set over this package's
// functions by fixpoint: direct banned calls seed it, same-package
// calls propagate it.
func (a *analyzerState) buildCallGraph() {
	a.decls = map[*types.Func]*ast.FuncDecl{}
	for _, f := range a.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := a.pass.Info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
	}
	// Seed: direct banned calls anywhere in a body (ignoring go/defer
	// func-lit bodies, which escape the caller's lock context).
	for fn, fd := range a.decls {
		inspectInContext(fd.Body, func(call *ast.CallExpr) {
			if what := a.directBanned(call); what != "" && a.blocking[fn] == nil {
				a.blocking[fn] = &reason{what: what}
			}
		})
	}
	// Propagate through same-package calls until stable.
	for changed := true; changed; {
		changed = false
		for fn, fd := range a.decls {
			if a.blocking[fn] != nil {
				continue
			}
			inspectInContext(fd.Body, func(call *ast.CallExpr) {
				if a.blocking[fn] != nil {
					return
				}
				if callee := a.calleeInPackage(call); callee != nil && a.blocking[callee] != nil {
					a.blocking[fn] = &reason{via: callee}
					changed = true
				}
			})
		}
	}
}

// inspectInContext visits every call in the body that executes in the
// enclosing function's lock context: it skips `go` statement operands
// and deferred function-literal bodies.
func inspectInContext(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
			return true
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// directBanned classifies a call that blocks on the outside world.
func (a *analyzerState) directBanned(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := a.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if obj.FullName() == "time.Sleep" {
		return "time.Sleep"
	}
	// A zero-argument Sync() method is an fsync whatever the receiver:
	// os.File today, any file-shaped wrapper tomorrow.
	if sel.Sel.Name == "Sync" && len(call.Args) == 0 {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "fsync"
		}
	}
	// Anything from package net: dials, reads, writes, deadlines.
	if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "net" {
		return "net I/O"
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "net" {
				return "net I/O"
			}
		}
	}
	return ""
}

// calleeInPackage resolves a call to a function declared in this
// package, if it is one.
func (a *analyzerState) calleeInPackage(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := a.pass.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := a.decls[fn]; !declared {
		return nil
	}
	return fn
}

// chain renders the call path from fn to its direct banned call.
func (a *analyzerState) chain(fn *types.Func) (string, string) {
	path := fn.Name()
	for r := a.blocking[fn]; r != nil; {
		if r.what != "" {
			return path, r.what
		}
		path += " -> " + r.via.Name()
		r = a.blocking[r.via]
	}
	return path, "I/O"
}

// checkFunc walks one function tracking held write locks and reports
// banned calls inside lock regions.
func (a *analyzerState) checkFunc(fd *ast.FuncDecl) {
	held := map[string]bool{}
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if _, ok := n.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
			// defer x.Unlock() keeps the region open to function end —
			// which is the truth — so only non-Unlock defers are checked.
			if lock, op := a.lockOp(n.Call); lock != "" && op == "Unlock" {
				return false
			}
			return true
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lock, op := a.lockOp(n); lock != "" {
				switch op {
				case "Lock":
					held[lock] = true
				case "Unlock":
					delete(held, lock)
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			if what := a.directBanned(n); what != "" {
				a.pass.Reportf(n.Pos(), "%s while %s is write-locked; stage under the lock, flush outside it", what, heldNames(held))
				return true
			}
			if callee := a.calleeInPackage(n); callee != nil && a.blocking[callee] != nil {
				path, what := a.chain(callee)
				a.pass.Reportf(n.Pos(), "call performs %s (%s) while %s is write-locked; stage under the lock, flush outside it", what, path, heldNames(held))
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// lockOp recognises x.Lock() / x.Unlock() on a sync.Mutex or
// sync.RWMutex and returns the lock's printed key and the operation.
// RLock/RUnlock return "" — read locks are not serialising.
func (a *analyzerState) lockOp(call *ast.CallExpr) (lock, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "Unlock" {
		return "", ""
	}
	tv, ok := a.pass.Info.Types[sel.X]
	if !ok {
		return "", ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", ""
	}
	return types.ExprString(sel.X), name
}

// heldNames renders the held lock set for the diagnostic.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic order for multi-lock messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += ", " + n
	}
	return out
}
