// Fixture for the syncack analyzer: watermark advances, ack-channel
// closes, and discarded durability errors.
package storage

import "os"

type walWriter struct {
	f    *os.File
	sseq uint64
}

// ackHostile is the durability-lie shape: the synced watermark advances
// with no fsync evidence anywhere in the function.
func (w *walWriter) ackHostile(seq uint64) {
	w.sseq = seq // want `durability signal`
}

// ackSynced is clean: a checked Sync dominates the signal.
func (w *walWriter) ackSynced(seq uint64) error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.sseq = seq
	return nil
}

// flushAndSync is sync-certified: it returns the Sync error.
func (w *walWriter) flushAndSync() error {
	return w.f.Sync()
}

// ackViaHelper is clean: the certified helper's checked call counts as
// evidence.
func (w *walWriter) ackViaHelper(seq uint64) error {
	if err := w.flushAndSync(); err != nil {
		return err
	}
	w.sseq = seq
	return nil
}

// notifyHostile closes an ack channel with no fsync behind it.
func notifyHostile(ackCh chan struct{}) {
	close(ackCh) // want `durability signal`
}

// notifySynced is clean.
func notifySynced(f *os.File, ackCh chan struct{}) error {
	if err := f.Sync(); err != nil {
		return err
	}
	close(ackCh)
	return nil
}

// installBlessed takes the documented exception: the caller fsynced the
// replacement file before handing it over.
func (w *walWriter) installBlessed(seq uint64) {
	//phlint:ignore syncack compaction fsyncs the replacement file before install
	w.sseq = seq
}

func discardSync(f *os.File) {
	f.Sync() // want `discarded`
}

func blankSync(f *os.File) {
	_ = f.Sync() // want `blank-discarded`
}

func deferSync(f *os.File) {
	defer f.Sync() // want `deferred Sync`
}

func discardTruncate(f *os.File) {
	f.Truncate(0) // want `discarded`
}

func discardClose(f *os.File) {
	f.Close() // want `discarded`
}

// deferClose is clean: idiomatic cleanup.
func deferClose(f *os.File) {
	defer f.Close()
}

// blankClose is clean: the discard is explicit.
func blankClose(f *os.File) {
	_ = f.Close()
}

// checkedTruncate is clean.
func checkedTruncate(f *os.File) error {
	return f.Truncate(0)
}
