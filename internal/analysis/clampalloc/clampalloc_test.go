package clampalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clampalloc"
)

func TestClampalloc(t *testing.T) {
	analysistest.Run(t, "testdata", clampalloc.Analyzer, "wire")
}
