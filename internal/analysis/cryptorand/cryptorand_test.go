package cryptorand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cryptorand"
)

func TestCryptorand(t *testing.T) {
	analysistest.Run(t, "testdata", cryptorand.Analyzer, "swp", "client")
}
