package relation

import (
	"testing"
	"testing/quick"
)

func TestTupleCodecRoundTrip(t *testing.T) {
	tp := Tuple{String("hello"), Int(-42), String(""), Int(0)}
	got, err := DecodeTuple(EncodeTuple(tp))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tp) {
		t.Fatalf("round trip: got %v want %v", got, tp)
	}
}

func TestTupleCodecProperty(t *testing.T) {
	f := func(s1, s2 string, i1, i2 int64) bool {
		tp := Tuple{String(s1), Int(i1), String(s2), Int(i2)}
		got, err := DecodeTuple(EncodeTuple(tp))
		return err == nil && got.Equal(tp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCodecRejectsTrailingGarbage(t *testing.T) {
	b := EncodeTuple(Tuple{Int(1)})
	if _, err := DecodeTuple(append(b, 0xAA)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTupleCodecRejectsTruncation(t *testing.T) {
	b := EncodeTuple(Tuple{String("hello"), Int(7)})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeTuple(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestTupleCodecRejectsOversizedLength(t *testing.T) {
	// A declared payload length far beyond the input must error, not
	// allocate or panic.
	b := []byte{0x00, 0x01, byte(TypeString), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeTuple(b); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	s := MustSchema("emp",
		Column{Name: "name", Type: TypeString, Width: 10},
		Column{Name: "salary", Type: TypeInt, Width: 5},
	)
	got, err := DecodeSchema(EncodeSchema(s))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip: got %v want %v", got, s)
	}
}

func TestSchemaCodecRejectsInvalid(t *testing.T) {
	// Decoding must re-validate: a zero-width column is rejected.
	s := &Schema{Name: "t", Columns: []Column{{Name: "a", Type: TypeString, Width: 0}}}
	if _, err := DecodeSchema(EncodeSchema(s)); err == nil {
		t.Fatal("invalid schema decoded without error")
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	tab := empTestTable()
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tab) {
		t.Fatalf("round trip failed:\n%v\nvs\n%v", got, tab)
	}
}

func TestTableCodecEmptyTable(t *testing.T) {
	tab := NewTable(empTestSchema())
	got, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || !got.Schema().Equal(tab.Schema()) {
		t.Fatal("empty table round trip failed")
	}
}

func TestTableCodecRejectsTruncation(t *testing.T) {
	b := EncodeTable(empTestTable())
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		if _, err := DecodeTable(b[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
