// Command phserver runs Eve: the untrusted database service provider. It
// stores encrypted tables and evaluates encrypted queries without ever
// holding keys.
//
// Usage:
//
//	phserver [-addr :7632] [-log /path/to/store.log]
//
// With -log the store is durable: mutations are appended to the log and
// replayed on restart (torn tails from crashes are truncated). Without it
// the store is in-memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/server"
	"repro/internal/storage"

	// Register the key-free evaluators for every scheme this server can
	// evaluate queries for (database/sql-driver style).
	_ "repro/internal/core"
	_ "repro/internal/schemes/bucket"
	_ "repro/internal/schemes/damiani"
	_ "repro/internal/schemes/detph"
	_ "repro/internal/schemes/gohph"
)

func main() {
	var (
		addr    = flag.String("addr", ":7632", "listen address")
		logPath = flag.String("log", "", "append-only persistence log (empty = in-memory)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "phserver: ", log.LstdFlags)

	var store *storage.Store
	var err error
	if *logPath != "" {
		store, err = storage.Open(*logPath)
		if err != nil {
			logger.Fatalf("opening store: %v", err)
		}
		defer store.Close()
		logger.Printf("durable store at %s", *logPath)
	} else {
		store = storage.NewMemory()
		logger.Print("in-memory store (no -log given)")
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	srv := server.New(store, logger)
	logger.Printf("listening on %s", l.Addr())
	for _, info := range store.List() {
		logger.Printf("replayed table %q (%s, %d tuples)", info.Name, info.SchemeID, info.Tuples)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintln(os.Stderr)
		logger.Printf("received %s, shutting down", s)
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		logger.Fatalf("serve: %v", err)
	}
	logger.Print("bye")
}
