package crypto

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestPRFDeterministic(t *testing.T) {
	p := NewPRF(testKey(1))
	a := p.Sum([]byte("hello"), 32)
	b := p.Sum([]byte("hello"), 32)
	if !bytes.Equal(a, b) {
		t.Fatal("PRF is not deterministic")
	}
}

func TestPRFInputSeparation(t *testing.T) {
	p := NewPRF(testKey(1))
	if bytes.Equal(p.Sum([]byte("a"), 16), p.Sum([]byte("b"), 16)) {
		t.Fatal("PRF collides on distinct inputs")
	}
}

func TestPRFKeySeparation(t *testing.T) {
	a := NewPRF(testKey(1)).Sum([]byte("x"), 16)
	b := NewPRF(testKey(2)).Sum([]byte("x"), 16)
	if bytes.Equal(a, b) {
		t.Fatal("PRF output identical under different keys")
	}
}

func TestPRFOutputLengths(t *testing.T) {
	p := NewPRF(testKey(3))
	for _, n := range []int{0, 1, 16, 31, 32, 33, 64, 100, 1000} {
		out := p.Sum([]byte("len"), n)
		if len(out) != n {
			t.Fatalf("Sum(_, %d) returned %d bytes", n, len(out))
		}
	}
}

func TestPRFExpansionIsPrefixConsistent(t *testing.T) {
	// Counter-mode expansion: a longer output must extend the shorter one.
	p := NewPRF(testKey(4))
	short := p.Sum([]byte("pfx"), 16)
	long := p.Sum([]byte("pfx"), 64)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("expanded output does not extend shorter output")
	}
}

func TestSumStringsInjective(t *testing.T) {
	// Length prefixing must distinguish ("ab","c") from ("a","bc").
	p := NewPRF(testKey(5))
	x := p.SumStrings(32, []byte("ab"), []byte("c"))
	y := p.SumStrings(32, []byte("a"), []byte("bc"))
	if bytes.Equal(x, y) {
		t.Fatal("SumStrings not injective over part boundaries")
	}
}

func TestDeriveKeyDomainSeparation(t *testing.T) {
	p := NewPRF(testKey(6))
	k1 := p.DeriveKey("label-a", []byte("ctx"))
	k2 := p.DeriveKey("label-b", []byte("ctx"))
	k3 := p.DeriveKey("label-a", []byte("other"))
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatal("derived keys collide across labels/contexts")
	}
}

func TestKeyFromBytes(t *testing.T) {
	long := make([]byte, 40)
	for i := range long {
		long[i] = byte(i)
	}
	k := KeyFromBytes(long)
	if !bytes.Equal(k[:], long[:KeySize]) {
		t.Fatal("KeyFromBytes should truncate long inputs")
	}
	short := KeyFromBytes([]byte("short"))
	var zero Key
	if short == zero {
		t.Fatal("KeyFromBytes of short input should not be all-zero")
	}
	if short != KeyFromBytes([]byte("short")) {
		t.Fatal("KeyFromBytes not deterministic")
	}
}

func TestCheckKeyLen(t *testing.T) {
	if err := CheckKeyLen(make([]byte, KeySize)); err != nil {
		t.Fatalf("CheckKeyLen rejected a valid key: %v", err)
	}
	if err := CheckKeyLen(make([]byte, KeySize-1)); err == nil {
		t.Fatal("CheckKeyLen accepted a short key")
	}
}

func TestSumIntoMatchesSum(t *testing.T) {
	p := NewPRF(testKey(8))
	for _, n := range []int{0, 1, 2, 16, 31, 32, 33, 64, 100, 257} {
		want := p.Sum([]byte("agree"), n)
		dst := make([]byte, n)
		p.SumInto(dst, []byte("agree"))
		if !bytes.Equal(dst, want) {
			t.Fatalf("SumInto(%d bytes) = %x, Sum = %x", n, dst, want)
		}
	}
}

func TestSumIntoZeroValuePRF(t *testing.T) {
	// A zero-value PRF (not built by NewPRF) must still evaluate, lazily
	// constructing its HMAC state.
	var p PRF
	dst := make([]byte, 16)
	p.SumInto(dst, []byte("lazy"))
	var fresh Key
	if !bytes.Equal(dst, NewPRF(fresh).Sum([]byte("lazy"), 16)) {
		t.Fatal("zero-value PRF disagrees with NewPRF of the zero key")
	}
}

func TestChecksumIntoAliasesSumInto(t *testing.T) {
	p := NewPRF(testKey(9))
	a := make([]byte, 2)
	b := make([]byte, 2)
	p.ChecksumInto(a, []byte("stream"))
	p.SumInto(b, []byte("stream"))
	if !bytes.Equal(a, b) {
		t.Fatal("ChecksumInto disagrees with SumInto")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPRF(testKey(10))
	c := p.Clone()
	if !bytes.Equal(p.Sum([]byte("x"), 32), c.Sum([]byte("x"), 32)) {
		t.Fatal("clone computes a different function")
	}
}

func TestSumIntoZeroAllocs(t *testing.T) {
	p := NewPRF(testKey(11))
	input := []byte("some fourteen-byte-ish input")
	dst := make([]byte, 48) // exercises both full-block and partial paths
	p.SumInto(dst, input)   // warm up
	if allocs := testing.AllocsPerRun(200, func() { p.SumInto(dst, input) }); allocs != 0 {
		t.Fatalf("SumInto allocates %v objects per run, want 0", allocs)
	}
}

func TestPRFConcurrentUse(t *testing.T) {
	// A single PRF must stay usable from many goroutines (client code
	// encrypting in parallel shares scheme-held PRFs); the shared HMAC
	// state is mutex-guarded. Run under -race.
	p := NewPRF(testKey(12))
	want := p.Sum([]byte("shared"), 32)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				if !bytes.Equal(p.Sum([]byte("shared"), 32), want) {
					done <- fmt.Errorf("concurrent Sum returned a corrupted value")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPRFDistinctInputsProperty(t *testing.T) {
	p := NewPRF(testKey(7))
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(p.Sum(a, 32), p.Sum(b, 32))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
