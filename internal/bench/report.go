// Package bench implements the experiment runners E1–E12 from DESIGN.md.
// Each runner regenerates one evaluation artifact of the paper (or of this
// repository's extension) and reports it as a printable table. The runners
// are shared between cmd/experiments (human-readable / markdown output) and
// the root-level testing.B benchmarks.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid with footnotes.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the experiment.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the data cells, formatted.
	Rows [][]string
	// Notes are free-form footnotes (paper claim, interpretation).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "> %s\n", n)
	}
	fmt.Fprintln(w)
}

// JSON renders the table as an indented JSON object, for machine-read
// artifacts (e.g. the CI-uploaded E14 report).
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// pad right-pads s to width.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f5 formats a float with five decimals (for small rates).
func f5(x float64) string { return fmt.Sprintf("%.5f", x) }
