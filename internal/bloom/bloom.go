// Package bloom implements the fixed-size Bloom filter used by the Goh
// (Z-IDX) searchable-encryption instantiation (internal/schemes/gohph):
// one filter per encrypted document, with bit positions derived from keyed
// PRFs so the server can test membership given a trapdoor but learns
// nothing about absent words.
package bloom

import (
	"fmt"
	"math"
)

// Filter is a fixed-size Bloom filter. The zero value is not usable; use
// New or FromBytes.
type Filter struct {
	bits []byte
	m    uint32 // number of bits
}

// New creates an empty filter with m bits (rounded up to a whole byte).
func New(m uint32) (*Filter, error) {
	if m == 0 {
		return nil, fmt.Errorf("bloom: filter needs at least one bit")
	}
	return &Filter{bits: make([]byte, (m+7)/8), m: m}, nil
}

// FromBytes wraps a serialised filter. The byte slice is used directly
// (not copied).
func FromBytes(b []byte, m uint32) (*Filter, error) {
	if m == 0 || uint32(len(b)) != (m+7)/8 {
		return nil, fmt.Errorf("bloom: %d bytes cannot hold an %d-bit filter", len(b), m)
	}
	return &Filter{bits: b, m: m}, nil
}

// Bits returns the number of bits m.
func (f *Filter) Bits() uint32 { return f.m }

// Bytes returns the backing bytes (not a copy).
func (f *Filter) Bytes() []byte { return f.bits }

// Set sets bit pos (mod m).
func (f *Filter) Set(pos uint32) {
	pos %= f.m
	f.bits[pos/8] |= 1 << (pos % 8)
}

// Test reports whether bit pos (mod m) is set.
func (f *Filter) Test(pos uint32) bool {
	pos %= f.m
	return f.bits[pos/8]&(1<<(pos%8)) != 0
}

// PopCount returns the number of set bits (used by tests and leakage
// analyses: the population count is the only thing a filter reveals about
// its document besides the tested positions).
func (f *Filter) PopCount() int {
	n := 0
	for _, b := range f.bits {
		for ; b != 0; b &= b - 1 {
			n++
		}
	}
	return n
}

// OptimalParams returns the classic Bloom dimensioning for n items at the
// target false-positive rate: m = -n·ln(p)/ln(2)², k = (m/n)·ln(2).
func OptimalParams(n int, fpRate float64) (m uint32, k int, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("bloom: item count must be positive, got %d", n)
	}
	if fpRate <= 0 || fpRate >= 1 {
		return 0, 0, fmt.Errorf("bloom: false-positive rate must be in (0,1), got %v", fpRate)
	}
	mf := -float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)
	m = uint32(math.Ceil(mf))
	if m < 8 {
		m = 8
	}
	k = int(math.Round(mf / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return m, k, nil
}

// FalsePositiveRate returns the expected FP probability of a filter with m
// bits and k hash functions after n insertions: (1 − e^(−kn/m))^k.
func FalsePositiveRate(m uint32, k, n int) float64 {
	if m == 0 || k <= 0 || n <= 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}
