// Package fault is a deterministic fault-injection harness for the
// chaos suites: it wraps the two seams the system's durability and
// replication claims rest on — the storage log file (threaded through
// storage.Options.WrapLog) and the client's network connection
// (threaded through client.DialConfig.DialFunc) — and makes them fail
// in precisely scripted ways: disk full mid-append, fsync failure, torn
// writes, crash at a byte offset, mid-frame connection cuts, partitions.
//
// Determinism is the point. Every fault fires at a byte count or call
// count fixed by the plan, never at a wall-clock instant or a random
// draw, so a failing chaos test replays identically under -run and
// -race. Point derives pseudo-random-looking—but seed-determined—
// trigger offsets for suites that want variety across cases without
// giving up reproducibility.
//
// The package deliberately imports neither storage nor client: File
// implements the same method set as storage.LogFile and Conn implements
// net.Conn, so Go's structural interfaces thread them through without a
// dependency cycle.
package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"
)

// ErrCrashed is returned by every operation on a File past its crash
// point: the simulated process is dead and nothing works any more. The
// test typically reopens the underlying path next, as recovery would.
var ErrCrashed = errors.New("fault: simulated crash")

// ErrCut is returned by operations on a Conn after its scripted
// mid-stream cut.
var ErrCut = errors.New("fault: connection cut")

// ErrPartitioned is returned by operations on a Conn while its
// partition switch is on.
var ErrPartitioned = errors.New("fault: network partitioned")

// WritableFile is the file seam: the method set of storage.LogFile,
// restated here so the package needs no storage import.
type WritableFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FilePlan scripts a File's faults. The zero value is a transparent
// passthrough; each trigger is disabled at zero.
type FilePlan struct {
	// FailWriteAfterBytes makes the write that would push the total
	// bytes written past this count fail with WriteErr. With ShortWrite
	// the failing write first lands its prefix up to the boundary — a
	// torn record the caller must repair; without it the write fails
	// whole, the shape of a clean out-of-space refusal.
	FailWriteAfterBytes int64
	// WriteErr is the error failed writes return; nil selects ENOSPC,
	// the canonical full disk.
	WriteErr error
	// ShortWrite makes the failing write partial instead of atomic.
	ShortWrite bool
	// FailSyncAfter makes the Nth Sync call fail (the first N-1
	// succeed) with SyncErr, and every later Sync too. Zero disables.
	FailSyncAfter int
	// SyncErr is the error failed syncs return; nil selects a generic
	// injected-fsync-failure error.
	SyncErr error
	// CrashAtByte simulates a process crash mid-write: the write
	// crossing this byte count lands only its prefix, and every
	// operation from then on — writes, syncs, truncates — returns
	// ErrCrashed. Zero disables.
	CrashAtByte int64
}

// File wraps a WritableFile with scripted faults. Safe for concurrent
// use (the storage log writer calls it from writer and flusher
// goroutines).
type File struct {
	f    WritableFile
	plan FilePlan

	mu      sync.Mutex
	written int64
	syncs   int
	crashed bool
}

// NewFile wraps f with the plan's faults.
func NewFile(f WritableFile, plan FilePlan) *File {
	if plan.WriteErr == nil {
		plan.WriteErr = syscall.ENOSPC
	}
	if plan.SyncErr == nil {
		plan.SyncErr = errors.New("fault: injected fsync failure")
	}
	return &File{f: f, plan: plan}
}

// Written returns the bytes successfully handed to the underlying file.
func (f *File) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Syncs returns how many Sync calls reached the file (including the
// failing ones).
func (f *File) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// Crashed reports whether the crash point has fired.
func (f *File) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if c := f.plan.CrashAtByte; c > 0 && f.written+int64(len(p)) > c {
		// Land the prefix that "made it to disk", then die.
		n := int(c - f.written)
		if n > 0 {
			n, _ = f.f.Write(p[:n])
			f.written += int64(n)
		}
		f.crashed = true
		return n, ErrCrashed
	}
	if b := f.plan.FailWriteAfterBytes; b > 0 && f.written+int64(len(p)) > b {
		if f.plan.ShortWrite {
			n := int(b - f.written)
			if n > 0 {
				n, _ = f.f.Write(p[:n])
				f.written += int64(n)
				return n, fmt.Errorf("fault: short write: %w", f.plan.WriteErr)
			}
		}
		return 0, f.plan.WriteErr
	}
	n, err := f.f.Write(p)
	f.written += int64(n)
	return n, err
}

func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if a := f.plan.FailSyncAfter; a > 0 && f.syncs >= a {
		return f.plan.SyncErr
	}
	return f.f.Sync()
}

func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	err := f.f.Truncate(size)
	if err == nil && size < f.written {
		f.written = size
	}
	return err
}

func (f *File) Close() error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		// The real process would never get to close cleanly; let the
		// underlying descriptor go so tests can reopen the path.
		f.f.Close()
		return ErrCrashed
	}
	return f.f.Close()
}

// Switch is a shared on/off lever — a partition the test throws while
// the system runs. The zero value is off. Safe for concurrent use.
type Switch struct {
	mu sync.Mutex
	on bool
}

// Set throws the switch.
func (s *Switch) Set(on bool) {
	s.mu.Lock()
	s.on = on
	s.mu.Unlock()
}

// On reports the switch position.
func (s *Switch) On() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on
}

// ConnPlan scripts a Conn's faults. The zero value is a transparent
// passthrough.
type ConnPlan struct {
	// CutAfterBytes severs the connection once this many bytes have
	// been written through it: the crossing write lands only its prefix
	// (a frame torn mid-flight) and everything after returns ErrCut.
	// Zero disables.
	CutAfterBytes int64
	// Partition, when set and on, makes reads and writes fail with
	// ErrPartitioned — both directions dead, connection unusable, but
	// redial observable (the test decides when the partition heals by
	// throwing the switch).
	Partition *Switch
	// Delay is added before every read and write, for ordering windows.
	Delay time.Duration
}

// Conn wraps a net.Conn with scripted faults.
type Conn struct {
	net.Conn
	plan ConnPlan

	mu      sync.Mutex
	written int64
	cut     bool
}

// NewConn wraps c with the plan's faults.
func NewConn(c net.Conn, plan ConnPlan) *Conn {
	return &Conn{Conn: c, plan: plan}
}

func (c *Conn) gate() error {
	if c.plan.Delay > 0 {
		time.Sleep(c.plan.Delay)
	}
	if c.plan.Partition != nil && c.plan.Partition.On() {
		return ErrPartitioned
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return ErrCut
	}
	return nil
}

func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	c.mu.Lock()
	if b := c.plan.CutAfterBytes; b > 0 && c.written+int64(len(p)) > b {
		n := int(b - c.written)
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
			c.written += int64(n)
		}
		c.cut = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, ErrCut
	}
	c.mu.Unlock()
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += int64(n)
	c.mu.Unlock()
	return n, err
}

// Point derives a deterministic trigger offset in [1, span] from a
// seed, for suites that want fault positions to vary across cases
// without giving up reproducibility (same seed, same fault, forever).
// The mix is SplitMix64's finalizer.
func Point(seed uint64, span int64) int64 {
	if span <= 1 {
		return 1
	}
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 1 + int64(z%uint64(span))
}
