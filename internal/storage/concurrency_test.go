package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ph"
)

// The storage layer is scheme-agnostic, so these tests register a tiny
// evaluator of their own: a tuple "matches" when its first word starts
// with the query token's first byte.
func init() {
	ph.RegisterEvaluator("storage-concurrency-test", func(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
		var positions []int
		for i, tp := range et.Tuples {
			if len(tp.Words) > 0 && len(q.Token) > 0 && len(tp.Words[0]) > 0 && tp.Words[0][0] == q.Token[0] {
				positions = append(positions, i)
			}
		}
		return ph.SelectPositions(et, positions), nil
	})
}

// concTable builds a table of n tuples whose first word starts with tag.
func concTable(n int, tag byte) *ph.EncryptedTable {
	t := &ph.EncryptedTable{SchemeID: "storage-concurrency-test"}
	for i := 0; i < n; i++ {
		t.Tuples = append(t.Tuples, ph.EncryptedTuple{
			ID:    []byte{byte(i), byte(i >> 8)},
			Words: [][]byte{{tag, byte(i)}},
		})
	}
	return t
}

// TestConcurrentQueryDuringAppend is the satellite regression for the
// per-table locking rework: N goroutines query a table while another
// appends to it and unrelated tables churn. Run under -race this pins the
// absence of data races; the assertions pin snapshot consistency — every
// query sees some prefix-consistent tuple count, never a torn state.
func TestConcurrentQueryDuringAppend(t *testing.T) {
	s := NewMemory()
	const initial = 64
	if err := s.Put("hot", concTable(initial, 0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", concTable(8, 0xBB)); err != nil {
		t.Fatal(err)
	}
	q := &ph.EncryptedQuery{SchemeID: "storage-concurrency-test", Token: []byte{0xAA}}

	const (
		queriers = 6
		rounds   = 60
		appends  = 40
	)
	var wg sync.WaitGroup
	// One writer appending matching tuples to the hot table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := s.Append("hot", concTable(1, 0xAA).Tuples); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	// One churner mutating an unrelated table: must never block or corrupt
	// hot-table queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := s.Append("other", concTable(1, 0xBB).Tuples); err != nil {
				t.Errorf("churn: %v", err)
				return
			}
		}
	}()
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := initial
			for i := 0; i < rounds; i++ {
				res, err := s.Query("hot", q)
				if err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				n := len(res.Positions)
				if n < initial || n > initial+appends {
					t.Errorf("querier %d: %d hits outside [%d, %d]", g, n, initial, initial+appends)
					return
				}
				// Appends only grow the table; a later query from the same
				// goroutine can never see fewer matches.
				if n < last {
					t.Errorf("querier %d: hit count went backwards %d -> %d", g, last, n)
					return
				}
				last = n
			}
		}(g)
	}
	wg.Wait()

	res, err := s.Query("hot", q)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Positions); got != initial+appends {
		t.Fatalf("final hit count %d, want %d", got, initial+appends)
	}
}

// TestConcurrentQueryAcrossTables drives queries against many tables at
// once while tables are created and dropped, exercising the catalogue
// lock / table lock split.
func TestConcurrentQueryAcrossTables(t *testing.T) {
	s := NewMemory()
	const tables = 8
	for i := 0; i < tables; i++ {
		if err := s.Put(fmt.Sprintf("t%d", i), concTable(32, 0xAA)); err != nil {
			t.Fatal(err)
		}
	}
	q := &ph.EncryptedQuery{SchemeID: "storage-concurrency-test", Token: []byte{0xAA}}
	var wg sync.WaitGroup
	for g := 0; g < tables; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", g)
			for i := 0; i < 50; i++ {
				res, err := s.Query(name, q)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				if len(res.Positions) != 32 {
					t.Errorf("%s: %d hits, want 32", name, len(res.Positions))
					return
				}
			}
		}(g)
	}
	// Concurrent churn on a separate table name: put/drop cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := s.Put("churn", concTable(4, 0xCC)); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
			if err := s.Drop("churn"); err != nil {
				t.Errorf("churn drop: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
