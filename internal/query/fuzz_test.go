package query

import (
	"reflect"
	"testing"

	"repro/internal/ph"
	"repro/internal/wire"
)

// FuzzDecodeConjResponse drives the CmdQueryConj response decoder with
// arbitrary bytes: it must never panic or over-allocate, and anything it
// accepts must re-encode stably. Seeds cover all three response kinds
// plus hostile shapes (huge step counts, NaN estimates, truncation).
func FuzzDecodeConjResponse(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeResponse(nil, &Response{Plan: sampleInfo(), Result: sampleResult()}))
	f.Add(EncodeResponse(nil, &Response{Plan: sampleInfo()}))
	f.Add(EncodeResponse(nil, &Response{Plan: &PlanInfo{Tuples: 3, Steps: []StepInfo{{Index: 0, Source: SourceSkipped, Est: 1}}}}))
	// Hostile: tiny frame declaring 2^32-1 plan steps.
	hostile := wire.AppendU8(nil, 0)
	hostile = wire.AppendU32(hostile, 10)
	hostile = wire.AppendU32(hostile, 0xFFFFFFFF)
	f.Add(hostile)
	// Hostile: NaN estimate.
	nan := wire.AppendU8(nil, 0)
	nan = wire.AppendU32(nan, 10)
	nan = wire.AppendU32(nan, 1)
	nan = wire.AppendU32(nan, 0)
	nan = wire.AppendU8(nan, 0)
	nan = wire.AppendU64(nan, 0x7FF8000000000001)
	nan = wire.AppendU8(nan, 0)
	nan = wire.AppendU32(nan, 0)
	nan = wire.AppendU32(nan, 0)
	f.Add(nan)
	// Truncated valid response.
	full := EncodeResponse(nil, &Response{Plan: sampleInfo(), Result: sampleResult()})
	f.Add(full[:len(full)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(wire.NewBuffer(data))
		if err != nil {
			return
		}
		re := EncodeResponse(nil, resp)
		resp2, err := DecodeResponse(wire.NewBuffer(re))
		if err != nil {
			t.Fatalf("re-decode of re-encoded response failed: %v", err)
		}
		if !reflect.DeepEqual(resp2.Plan, resp.Plan) {
			t.Fatal("plan not stable across re-encoding")
		}
	})
}

// FuzzDecodeConjRequest drives the server-side request fields the same
// way the server's handler reads them (name, flags, count, queries).
func FuzzDecodeConjRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRequest(nil, "emp", 0, sampleQueries()))
	f.Add(EncodeRequest(nil, "emp", wire.ConjFlagVerified, sampleQueries()))
	f.Add(EncodeRequest(nil, "", wire.ConjFlagExplain, nil))
	// Hostile count in a small frame.
	hostile := wire.AppendString(nil, "emp")
	hostile = wire.AppendU8(hostile, 0)
	hostile = wire.AppendU32(hostile, 0xFFFFFFFF)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewBuffer(data)
		if _, err := r.String(); err != nil {
			return
		}
		if _, err := r.U8(); err != nil {
			return
		}
		n, err := r.U32()
		if err != nil {
			return
		}
		// Mirror the server's clamp: preallocation bounded by what the
		// payload could hold, decode loop reads the declared count.
		capHint := r.Remaining() / 8
		if uint64(n) < uint64(capHint) {
			capHint = int(n)
		}
		if capHint > 1<<20 {
			t.Fatalf("clamp admitted %d preallocated queries from a %d-byte payload", capHint, len(data))
		}
		for i := uint32(0); i < n; i++ {
			if _, err := wire.DecodeQuery(r); err != nil {
				return
			}
		}
	})
}

func sampleQueries() []*ph.EncryptedQuery {
	return []*ph.EncryptedQuery{
		{SchemeID: "swp-ph", Token: []byte("tok-a")},
		{SchemeID: "swp-ph", Token: []byte("tok-b")},
	}
}
