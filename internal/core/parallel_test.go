package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/swp"
	"repro/internal/workload"
)

// bigFixture encrypts one table large enough to engage the parallel path,
// shared across the tests and benchmarks in this file.
type bigFixture struct {
	p  *PH
	ct *ph.EncryptedTable
	t  *relation.Table
}

var (
	bigOnce sync.Once
	bigFix  *bigFixture
	bigErr  error
)

func bigTable(tb testing.TB, n int) *bigFixture {
	tb.Helper()
	bigOnce.Do(func() {
		var key crypto.Key
		for i := range key {
			key[i] = byte(i)
		}
		t, err := workload.Employees(n, 7)
		if err != nil {
			bigErr = err
			return
		}
		p, err := New(key, t.Schema(), Options{})
		if err != nil {
			bigErr = err
			return
		}
		ct, err := p.EncryptTable(t)
		if err != nil {
			bigErr = err
			return
		}
		bigFix = &bigFixture{p: p, ct: ct, t: t}
	})
	if bigErr != nil {
		tb.Fatal(bigErr)
	}
	if len(bigFix.ct.Tuples) < n {
		tb.Fatalf("fixture has %d tuples, want ≥ %d", len(bigFix.ct.Tuples), n)
	}
	return bigFix
}

// benchTuples exceeds parallelThreshold by an order of magnitude — the
// ≥10k-tuple table the acceptance criteria name.
const benchTuples = 10000

func fixtureQueries(tb testing.TB, fix *bigFixture) []relation.Eq {
	tb.Helper()
	qs := workload.QueryMix(fix.t, 6, 11)
	// Add an absent value: the all-miss scan is the worst case.
	qs = append(qs, relation.Eq{Column: "name", Value: relation.String("zz-absent")})
	return qs
}

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	fix := bigTable(t, benchTuples)
	for _, q := range fixtureQueries(t, fix) {
		eq, err := fix.p.EncryptQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := EvaluateSerial(fix.ct, eq)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Evaluate(fix.ct, eq)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Positions) != len(parallel.Positions) {
			t.Fatalf("%s: serial %d hits, parallel %d", q, len(serial.Positions), len(parallel.Positions))
		}
		for i := range serial.Positions {
			if serial.Positions[i] != parallel.Positions[i] {
				t.Fatalf("%s: position %d: serial %d, parallel %d (order must be identical)",
					q, i, serial.Positions[i], parallel.Positions[i])
			}
		}
		// Sanity: the merged order is the table order.
		for i := 1; i < len(parallel.Positions); i++ {
			if parallel.Positions[i] <= parallel.Positions[i-1] {
				t.Fatalf("%s: positions not strictly increasing: %v", q, parallel.Positions)
			}
		}
	}
}

func TestEvaluateConcurrentQueries(t *testing.T) {
	// The parallel evaluator itself must be reentrant: many queries against
	// the same encrypted table at once (the storage layer's new behaviour).
	fix := bigTable(t, benchTuples)
	queries := fixtureQueries(t, fix)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			eq, err := fix.p.EncryptQuery(q)
			if err != nil {
				t.Error(err)
				return
			}
			want, err := EvaluateSerial(fix.ct, eq)
			if err != nil {
				t.Error(err)
				return
			}
			for rep := 0; rep < 3; rep++ {
				got, err := Evaluate(fix.ct, eq)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got.Positions) != len(want.Positions) {
					t.Errorf("%s: got %d hits, want %d", q, len(got.Positions), len(want.Positions))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// benchEvaluate times one evaluator over the shared 10k-tuple fixture. The
// query is a selective name lookup so the measurement is the table scan,
// not result-tuple copying.
func benchEvaluate(b *testing.B, eval func(*ph.EncryptedTable, *ph.EncryptedQuery) (*ph.Result, error)) {
	fix := bigTable(b, benchTuples)
	name := fix.t.Tuple(benchTuples / 2)[0]
	eq, err := fix.p.EncryptQuery(relation.Eq{Column: "name", Value: name})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval(fix.ct, eq); err != nil {
			b.Fatal(err)
		}
	}
}

// decodeMeta and decodeTrapdoor below are the seed implementation's
// two-step token decode (metadata → word-length map → trapdoor lookup),
// kept verbatim here so evaluateSeedBaseline measures the true before
// shape; production code parses with decodeQueryToken instead.
func decodeMeta(meta []byte) (map[int]swp.Params, error) {
	n, err := metaPairs(meta)
	if err != nil {
		return nil, err
	}
	out := make(map[int]swp.Params, n)
	for i := 0; i < n; i++ {
		p := metaParam(meta, i)
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := out[p.WordLen]; dup {
			return nil, fmt.Errorf("core: table meta repeats word length %d", p.WordLen)
		}
		out[p.WordLen] = p
	}
	return out, nil
}

func decodeTrapdoor(byLen map[int]swp.Params, token []byte) (swp.Trapdoor, swp.Params, error) {
	xLen := len(token) - crypto.KeySize
	if xLen < 2 {
		return swp.Trapdoor{}, swp.Params{}, fmt.Errorf("core: trapdoor token of %d bytes too short", len(token))
	}
	params, ok := byLen[xLen]
	if !ok {
		return swp.Trapdoor{}, swp.Params{}, fmt.Errorf("core: trapdoor word length %d unknown to this table", xLen)
	}
	return swp.Trapdoor{X: token[:xLen], K: token[xLen:]}, params, nil
}

// evaluateSeedBaseline replicates the pre-engine seed implementation of
// Evaluate — single-threaded, a fresh HMAC state and two scratch slices
// per swp.Match call, positions grown from nil — as the before-side of the
// speedup comparison.
func evaluateSeedBaseline(et *ph.EncryptedTable, q *ph.EncryptedQuery) (*ph.Result, error) {
	byLen, err := decodeMeta(et.Meta)
	if err != nil {
		return nil, err
	}
	td, params, err := decodeTrapdoor(byLen, q.Token)
	if err != nil {
		return nil, err
	}
	var positions []int
	for i, etp := range et.Tuples {
		for _, cw := range etp.Words {
			if len(cw) == params.WordLen && swp.Match(params, cw, td) {
				positions = append(positions, i)
				break
			}
		}
	}
	return ph.SelectPositions(et, positions), nil
}

// BenchmarkEvaluateParallel is the sharded worker-pool scan; compare
// against BenchmarkEvaluateSeedBaseline for the engine's total speedup and
// against BenchmarkEvaluateSerial for the share parallelism contributes.
func BenchmarkEvaluateParallel(b *testing.B) { benchEvaluate(b, Evaluate) }

// BenchmarkEvaluateSerial is the single-threaded scan on the new Matcher
// engine (the allocation win without the parallelism win).
func BenchmarkEvaluateSerial(b *testing.B) { benchEvaluate(b, EvaluateSerial) }

// BenchmarkEvaluateSeedBaseline is the seed implementation kept verbatim
// for before/after reporting.
func BenchmarkEvaluateSeedBaseline(b *testing.B) { benchEvaluate(b, evaluateSeedBaseline) }
