package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
	"repro/internal/workload"
)

// swpFixture builds a core (swp-ph) scheme with an encrypted employees
// table and a hot-word query, the realistic workload for the result
// cache: deterministic trapdoors over a real scheme, verifiable against
// core.EvaluateSerial ground truth.
type swpFixture struct {
	scheme *core.PH
	ct     *ph.EncryptedTable
	q      *ph.EncryptedQuery
}

func newSWPFixture(tb testing.TB, tuples int, seed int64) *swpFixture {
	tb.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		tb.Fatal(err)
	}
	table, err := workload.Employees(tuples, seed)
	if err != nil {
		tb.Fatal(err)
	}
	scheme, err := core.New(key, table.Schema(), core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ct, err := scheme.EncryptTable(table)
	if err != nil {
		tb.Fatal(err)
	}
	q, err := scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String("HR")})
	if err != nil {
		tb.Fatal(err)
	}
	return &swpFixture{scheme: scheme, ct: ct, q: q}
}

// query builds a trapdoor for an arbitrary dept value. The benchmarks use
// a rare value so the numbers isolate scan cost from the unavoidable,
// result-size-proportional cost of materialising matching tuples.
func (f *swpFixture) query(tb testing.TB, dept string) *ph.EncryptedQuery {
	tb.Helper()
	q, err := f.scheme.EncryptQuery(relation.Eq{Column: "dept", Value: relation.String(dept)})
	if err != nil {
		tb.Fatal(err)
	}
	return q
}

// encryptBatch encrypts n fresh tuples under the fixture's scheme, with
// dept drawn from the workload distribution (seed controls whether any
// match "HR").
func (f *swpFixture) encryptBatch(tb testing.TB, n int, seed int64) []ph.EncryptedTuple {
	tb.Helper()
	t, err := workload.Employees(n, seed)
	if err != nil {
		tb.Fatal(err)
	}
	ct, err := f.scheme.EncryptTable(t)
	if err != nil {
		tb.Fatal(err)
	}
	return ct.Tuples
}

// resultsEqual reports whether two results are byte-identical.
func resultsEqual(a, b *ph.Result) bool {
	if len(a.Positions) != len(b.Positions) || len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			return false
		}
	}
	for i := range a.Tuples {
		at, bt := a.Tuples[i], b.Tuples[i]
		if !bytes.Equal(at.ID, bt.ID) || !bytes.Equal(at.Blob, bt.Blob) || len(at.Words) != len(bt.Words) {
			return false
		}
		for j := range at.Words {
			if !bytes.Equal(at.Words[j], bt.Words[j]) {
				return false
			}
		}
	}
	return true
}

// assertMatchesSerial queries the store and checks the result is
// byte-identical to core.EvaluateSerial run on a fresh snapshot of the
// same table.
func assertMatchesSerial(t *testing.T, s *Store, name string, q *ph.EncryptedQuery, context string) {
	t.Helper()
	got, err := s.Query(name, q)
	if err != nil {
		t.Fatalf("%s: query: %v", context, err)
	}
	snap, err := s.Get(name)
	if err != nil {
		t.Fatalf("%s: get: %v", context, err)
	}
	want, err := core.EvaluateSerial(snap, q)
	if err != nil {
		t.Fatalf("%s: serial ground truth: %v", context, err)
	}
	if !resultsEqual(got, want) {
		t.Fatalf("%s: cached result diverges from EvaluateSerial: got %d hits %v, want %d hits %v",
			context, len(got.Positions), got.Positions, len(want.Positions), want.Positions)
	}
}

// TestCacheMatchesSerialAcrossMutations drives a deterministic
// interleaving of every mutation kind against repeated cached queries,
// asserting after each step that the cached answer stays byte-identical
// to the serial reference evaluation. This is the correctness spine of
// the result cache: hits, delta scans after appends, invalidation after
// replace/drop, and version bumps after compaction all happen on this
// path.
func TestCacheMatchesSerialAcrossMutations(t *testing.T) {
	f := newSWPFixture(t, 120, 1)
	s, err := Open(filepath.Join(t.TempDir(), "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("emp", f.ct); err != nil {
		t.Fatal(err)
	}

	assertMatchesSerial(t, s, "emp", f.q, "cold miss")
	assertMatchesSerial(t, s, "emp", f.q, "warm hit")
	if st := s.CacheStats(); st.Hits == 0 {
		t.Fatalf("no cache hit recorded after repeat query: %+v", st)
	}

	// Append twice: first batch is guaranteed to contain HR rows (seed 1
	// reuses the base distribution), second batch exercises a second
	// consecutive delta.
	for round, seed := range []int64{7, 8} {
		if err := s.Append("emp", f.encryptBatch(t, 30, seed)); err != nil {
			t.Fatal(err)
		}
		assertMatchesSerial(t, s, "emp", f.q, "after append (delta)")
		if st := s.CacheStats(); st.Deltas == 0 {
			t.Fatalf("append round %d produced no delta scan: %+v", round, st)
		}
	}

	// Compaction bumps versions but must not disturb cached answers.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	assertMatchesSerial(t, s, "emp", f.q, "after compact")

	// Replacement must invalidate: the answer tracks the new table.
	repl := newSWPFixture(t, 90, 2)
	if err := s.Put("emp", repl.ct); err != nil {
		t.Fatal(err)
	}
	assertMatchesSerial(t, s, "emp", repl.q, "after replace")

	// Drop then recreate under the same name: no ghost of the old cache.
	if err := s.Drop("emp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("emp", f.ct); err != nil {
		t.Fatal(err)
	}
	assertMatchesSerial(t, s, "emp", f.q, "after drop+recreate")

	// The log replays into an equivalent store; queries there agree too.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertMatchesSerial(t, s2, "emp", f.q, "after replay")
}

// TestCacheConcurrentMutations is the -race satellite: queriers hammer a
// cached hot-word query while one writer appends matching tuples, one
// compacts, and one churns an unrelated table with Put/Drop cycles.
// During the run each result must be internally consistent (ascending
// positions, hit count within the append envelope); after the dust
// settles every query must be byte-identical to EvaluateSerial ground
// truth.
func TestCacheConcurrentMutations(t *testing.T) {
	f := newSWPFixture(t, 120, 3)
	base, err := core.EvaluateSerial(f.ct, f.q)
	if err != nil {
		t.Fatal(err)
	}
	minHits := len(base.Positions)
	s, err := Open(filepath.Join(t.TempDir(), "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("emp", f.ct); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("other", newSWPFixture(t, 40, 4).ct); err != nil {
		t.Fatal(err)
	}

	const (
		appends  = 12
		perBatch = 10
		queriers = 4
		rounds   = 40
	)
	batches := make([][]ph.EncryptedTuple, appends)
	for i := range batches {
		batches[i] = f.encryptBatch(t, perBatch, int64(20+i))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // appender on the hot table
		defer wg.Done()
		for _, b := range batches {
			if err := s.Append("emp", b); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // exporter: Get's deep copy now runs outside the table lock
		defer wg.Done()
		for i := 0; i < 20; i++ {
			snap, err := s.Get("emp")
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if len(snap.Tuples) < 120 {
				t.Errorf("get: snapshot of %d tuples, want >= 120", len(snap.Tuples))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // churner on an unrelated table
		defer wg.Done()
		churn := newSWPFixture(t, 16, 5)
		for i := 0; i < 15; i++ {
			if err := s.Put("churn", churn.ct); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
			if err := s.Drop("churn"); err != nil {
				t.Errorf("churn drop: %v", err)
				return
			}
		}
	}()
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := minHits
			for i := 0; i < rounds; i++ {
				res, err := s.Query("emp", f.q)
				if err != nil {
					t.Errorf("querier %d: %v", g, err)
					return
				}
				for j := 1; j < len(res.Positions); j++ {
					if res.Positions[j] <= res.Positions[j-1] {
						t.Errorf("querier %d: positions not ascending: %v", g, res.Positions)
						return
					}
				}
				n := len(res.Positions)
				if n < last || n > minHits+appends*perBatch {
					t.Errorf("querier %d: hit count %d outside [%d, %d]", g, n, last, minHits+appends*perBatch)
					return
				}
				last = n
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	assertMatchesSerial(t, s, "emp", f.q, "after concurrent churn")
	assertMatchesSerial(t, s, "other", f.q, "unrelated table")
	st := s.CacheStats()
	if st.Hits == 0 || st.Deltas == 0 {
		t.Errorf("concurrency run exercised no cache reuse: %+v", st)
	}
}

// TestCacheDisabled pins the opt-out: with the cache removed the store
// still answers correctly and reports zero stats.
func TestCacheDisabled(t *testing.T) {
	f := newSWPFixture(t, 64, 6)
	s := NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", f.ct); err != nil {
		t.Fatal(err)
	}
	assertMatchesSerial(t, s, "emp", f.q, "uncached")
	assertMatchesSerial(t, s, "emp", f.q, "uncached repeat")
	if st := s.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}

// BenchmarkQueryCached measures the steady-state hot-word query: every
// iteration after the first is answered from the result cache without
// scanning the table.
func BenchmarkQueryCached(b *testing.B) {
	f := newSWPFixture(b, 4096, 1)
	q := f.query(b, "FIN")
	s := NewMemory()
	if err := s.Put("emp", f.ct); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Query("emp", q); err != nil { // warm
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("emp", q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUncached is the before-side of BenchmarkQueryCached: the
// same repeated hot-word query with the result cache disabled, i.e. the
// PR 1 full-scan-per-query path.
func BenchmarkQueryUncached(b *testing.B) {
	f := newSWPFixture(b, 4096, 1)
	q := f.query(b, "FIN")
	s := NewMemory()
	s.SetResultCache(nil)
	if err := s.Put("emp", f.ct); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("emp", q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryDelta measures the append-then-requery path: each
// iteration appends one tuple and re-runs the hot query, which re-scans
// only the appended tail instead of the whole table.
func BenchmarkQueryDelta(b *testing.B) {
	f := newSWPFixture(b, 4096, 1)
	q := f.query(b, "FIN")
	s := NewMemory()
	if err := s.Put("emp", f.ct); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Query("emp", q); err != nil { // warm
		b.Fatal(err)
	}
	one := f.encryptBatch(b, 1, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("emp", one); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Query("emp", q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.CacheStats(); uint64(b.N) > st.Deltas {
		b.Fatalf("delta path not exercised: %d iterations, %d delta scans", b.N, st.Deltas)
	}
}
