package core

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/ph"
	"repro/internal/relation"
)

// newVarlenPH builds a PH in per-column-width mode.
func newVarlenPH(t *testing.T) *PH {
	t.Helper()
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(key, empSchema(), Options{PerColumnWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVarlenRoundTrip(t *testing.T) {
	p := newVarlenPH(t)
	tab := empTable(t)
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := p.DecryptTable(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Equal(tab) {
		t.Fatal("variable-width round trip changed the table")
	}
}

func TestVarlenHomomorphicSelect(t *testing.T) {
	p := newVarlenPH(t)
	tab := empTable(t)
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []relation.Eq{
		{Column: "name", Value: relation.String("Montgomery")},
		{Column: "dept", Value: relation.String("HR")},
		{Column: "salary", Value: relation.Int(7500)},
		{Column: "dept", Value: relation.String("NONE!")},
	} {
		want, err := relation.Select(tab, q)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := p.EncryptQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ph.Apply(ct, eq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.DecryptResult(q, res)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("varlen query %s: wrong result", q)
		}
	}
}

func TestVarlenCiphertextSmaller(t *testing.T) {
	fixed := newTestPH(t, Options{})
	varlen := newVarlenPH(t)
	tab := empTable(t)
	ctF, err := fixed.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	ctV, err := varlen.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	sized := func(ct *ph.EncryptedTable) int {
		n := 0
		for _, tp := range ct.Tuples {
			for _, w := range tp.Words {
				n += len(w)
			}
		}
		return n
	}
	f, v := sized(ctF), sized(ctV)
	if v >= f {
		t.Fatalf("variable-width ciphertext (%d bytes) not smaller than fixed (%d)", v, f)
	}
	// Exact expectation: fixed = 3 columns × 11 bytes; varlen =
	// 11 (name) + 6 (dept) + 7 (salary incl. sign byte).
	if f != tab.Len()*33 || v != tab.Len()*24 {
		t.Fatalf("ciphertext sizes f=%d v=%d, want %d and %d", f, v, tab.Len()*33, tab.Len()*24)
	}
}

func TestVarlenLeaksOnlyColumnIdentity(t *testing.T) {
	// Documented trade-off: cipherword lengths reveal the column, and
	// nothing else. Two tables with different values but the same schema
	// produce identical length multisets.
	p := newVarlenPH(t)
	t1 := relation.NewTable(empSchema())
	t1.MustInsert(relation.String("A"), relation.String("B"), relation.Int(1))
	t2 := relation.NewTable(empSchema())
	t2.MustInsert(relation.String("Montgomery"), relation.String("SALES"), relation.Int(99999))
	ct1, err := p.EncryptTable(t1)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := p.EncryptTable(t2)
	if err != nil {
		t.Fatal(err)
	}
	lengths := func(ct *ph.EncryptedTable) map[int]int {
		m := map[int]int{}
		for _, tp := range ct.Tuples {
			for _, w := range tp.Words {
				m[len(w)]++
			}
		}
		return m
	}
	l1, l2 := lengths(ct1), lengths(ct2)
	if len(l1) != len(l2) {
		t.Fatalf("length profiles differ: %v vs %v", l1, l2)
	}
	for k, v := range l1 {
		if l2[k] != v {
			t.Fatalf("length profiles differ at %d: %v vs %v", k, l1, l2)
		}
	}
}

func TestVarlenNarrowColumnClampsChecksum(t *testing.T) {
	// A width-1 int column yields 3-byte words (sign allowance + id);
	// the default m=2 must be clamped to fit, and everything still works.
	s := relation.MustSchema("t",
		relation.Column{Name: "flag", Type: relation.TypeInt, Width: 1},
		relation.Column{Name: "note", Type: relation.TypeString, Width: 20},
	)
	key, err := crypto.RandomKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(key, s, Options{PerColumnWidth: true, ChecksumLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(s)
	tab.MustInsert(relation.Int(1), relation.String("hello world"))
	tab.MustInsert(relation.Int(2), relation.String("goodbye"))
	ct, err := p.EncryptTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	q := relation.Eq{Column: "flag", Value: relation.Int(2)}
	eq, err := p.EncryptQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ph.Apply(ct, eq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.DecryptResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[1].Str() != "goodbye" {
		t.Fatalf("narrow-column select wrong: %v", got)
	}
}

func TestMetaCodecRoundTrip(t *testing.T) {
	p := newVarlenPH(t)
	for _, want := range p.Params() {
		// A token of matching length must resolve to exactly these
		// parameters.
		token := make([]byte, want.WordLen+crypto.KeySize)
		_, got, err := decodeQueryToken(p.meta, token)
		if err != nil {
			t.Fatalf("decodeQueryToken for word length %d: %v", want.WordLen, err)
		}
		if got != want {
			t.Fatalf("meta round trip lost %+v (got %+v)", want, got)
		}
	}
}

func TestMetaDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{metaVersion},
		{99, 1, 0, 11, 0, 2},         // bad version
		{metaVersion, 0},             // zero lengths
		{metaVersion, 1, 0, 11},      // truncated pair
		{metaVersion, 1, 0, 2, 0, 5}, // checksum >= wordLen
		{metaVersion, 2, 0, 11, 0, 2, 0, 11, 0, 2}, // duplicate length
	}
	token := make([]byte, 11+crypto.KeySize) // matches the 11-byte pairs above
	for i, m := range cases {
		if _, _, err := decodeQueryToken(m, token); err == nil {
			t.Errorf("case %d: malformed meta %v accepted", i, m)
		}
	}
}

func TestTrapdoorDecodeErrors(t *testing.T) {
	p := newTestPH(t, Options{})
	if _, _, err := decodeQueryToken(p.meta, make([]byte, 10)); err == nil {
		t.Fatal("short token accepted")
	}
	if _, _, err := decodeQueryToken(p.meta, make([]byte, crypto.KeySize+99)); err == nil {
		t.Fatal("token with unknown word length accepted")
	}
}

func TestCrossModeCiphertextRejected(t *testing.T) {
	// A fixed-mode instance cannot decrypt varlen ciphertext (different
	// keys and geometry) — it must error, not return garbage.
	fixed := newTestPH(t, Options{})
	varlen := newVarlenPH(t)
	ct, err := varlen.EncryptTable(empTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.DecryptTable(ct); err == nil {
		t.Fatal("fixed-mode instance decrypted varlen ciphertext without error")
	}
}
